"""Replica-level fault scheduling: crash/drain events and their config.

Covers the schedule dataclasses (validation, determinism of the random
generator), the ``chaos-cluster`` preset, the per-replica fault-seed
derivation (adding replicas must never reshuffle another replica's fault
stream), and the standalone-engine guard (replica schedules are
cluster-level).
"""

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine
from repro.faults import (
    FAULT_PROFILES,
    FaultConfig,
    ReplicaCrash,
    ReplicaDrain,
    ReplicaFaultSchedule,
    fault_profile,
)
from repro.models import get_model
from repro.runner.seeds import seed_for


class TestReplicaCrash:
    def test_restart_at(self):
        crash = ReplicaCrash(at=100.0, replica=1, downtime=30.0)
        assert crash.restart_at == 130.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at": -1.0, "replica": 0},
            {"at": 0.0, "replica": -1},
            {"at": 0.0, "replica": 0, "downtime": 0.0},
            {"at": 0.0, "replica": 0, "downtime": -5.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaCrash(**kwargs)

    def test_drain_validation(self):
        with pytest.raises(ValueError):
            ReplicaDrain(at=-1.0, replica=0)
        with pytest.raises(ValueError):
            ReplicaDrain(at=0.0, replica=-2)


class TestReplicaFaultSchedule:
    def test_empty_schedule_is_inert(self):
        schedule = ReplicaFaultSchedule()
        assert not schedule.enabled
        assert not FaultConfig(replica_schedule=schedule).enabled

    def test_any_event_enables(self):
        crash = ReplicaCrash(at=1.0, replica=0)
        drain = ReplicaDrain(at=1.0, replica=0)
        assert ReplicaFaultSchedule(crashes=(crash,)).enabled
        assert ReplicaFaultSchedule(drains=(drain,)).enabled
        assert FaultConfig(
            replica_schedule=ReplicaFaultSchedule(crashes=(crash,))
        ).enabled

    def test_max_replica_spans_crashes_and_drains(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=1.0, replica=2),),
            drains=(ReplicaDrain(at=2.0, replica=5),),
        )
        assert schedule.max_replica == 5

    def test_validate_for_rejects_small_clusters(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=1.0, replica=3),)
        )
        schedule.validate_for(4)
        with pytest.raises(ValueError):
            schedule.validate_for(3)

    def test_random_crashes_is_deterministic(self):
        a = ReplicaFaultSchedule.random_crashes(
            seed=9, n_replicas=4, n_crashes=6, horizon=3600.0
        )
        b = ReplicaFaultSchedule.random_crashes(
            seed=9, n_replicas=4, n_crashes=6, horizon=3600.0
        )
        assert a == b
        assert len(a.crashes) == 6
        assert a.crashes == tuple(
            sorted(a.crashes, key=lambda c: (c.at, c.replica))
        )
        assert all(0 <= c.replica < 4 for c in a.crashes)
        assert all(0.0 <= c.at <= 3600.0 for c in a.crashes)

    def test_random_crashes_vary_with_seed(self):
        a = ReplicaFaultSchedule.random_crashes(
            seed=9, n_replicas=4, n_crashes=6, horizon=3600.0
        )
        b = ReplicaFaultSchedule.random_crashes(
            seed=10, n_replicas=4, n_crashes=6, horizon=3600.0
        )
        assert a != b


class TestNetFaultRate:
    def test_validated_as_probability(self):
        with pytest.raises(ValueError):
            FaultConfig(net_fault_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(net_fault_rate=1.5)

    def test_enables(self):
        assert FaultConfig(net_fault_rate=0.01).enabled


class TestChaosClusterProfile:
    def test_registered(self):
        assert "chaos-cluster" in FAULT_PROFILES

    def test_contents(self):
        config = fault_profile("chaos-cluster", seed=5)
        assert config.seed == 5
        assert config.net_fault_rate > 0.0
        schedule = config.replica_schedule
        assert schedule is not None and schedule.enabled
        assert len(schedule.crashes) == 1
        assert len(schedule.drains) == 1
        # The built-in schedule needs at least two replicas.
        assert schedule.max_replica == 1
        with pytest.raises(ValueError):
            schedule.validate_for(1)


class TestSeedDerivation:
    """Satellite: per-replica fault seeds derive from the experiment
    seed and the replica *name*, not ``seed + i`` — adding a replica
    must never reshuffle an existing replica's fault stream."""

    def _cluster(self, n):
        return ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=n, router=RouterName.AFFINITY),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(),
            fault_config=FaultConfig(seed=11, ssd_fault_rate=0.01),
        )

    def test_replica_seeds_are_derived(self):
        cluster = self._cluster(3)
        for i, engine in enumerate(cluster.engines):
            assert engine.fault_config is not None
            assert engine.fault_config.seed == seed_for(11, f"replica-{i}")

    def test_growing_the_cluster_keeps_existing_streams(self):
        small = self._cluster(2)
        large = self._cluster(4)
        for i in range(2):
            assert (
                small.engines[i].fault_config.seed
                == large.engines[i].fault_config.seed
            )

    def test_single_instance_keeps_base_seed(self):
        cluster = self._cluster(1)
        assert cluster.engines[0].fault_config.seed == 11


class TestStandaloneGuard:
    def test_serving_engine_rejects_replica_schedules(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=1.0, replica=0),)
        )
        with pytest.raises(ValueError, match="cluster-level"):
            ServingEngine(
                get_model("llama-13b"),
                engine_config=EngineConfig(batch_size=8),
                store_config=StoreConfig(),
                fault_config=FaultConfig(replica_schedule=schedule),
            )

    def test_cluster_rejects_undersized_topology(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=1.0, replica=2),)
        )
        with pytest.raises(ValueError):
            ClusterEngine(
                get_model("llama-13b"),
                cluster=ClusterConfig(n_instances=2),
                engine_config=EngineConfig(batch_size=8),
                store_config=StoreConfig(),
                fault_config=FaultConfig(replica_schedule=schedule),
            )
