"""Tests for the seeded FaultInjector and the TierHealth circuit breaker."""

from repro.faults import BreakerState, DegradedWindow, FaultConfig, FaultInjector, TierHealth


class TestFaultInjector:
    def test_same_seed_same_decision_stream(self):
        config = FaultConfig(seed=11, ssd_fault_rate=0.3, corruption_rate=0.3)
        a, b = FaultInjector(config), FaultInjector(config)
        stream_a = [a.transfer_fails("ssd", 0.0) for _ in range(50)]
        stream_a += [a.corrupts_save() for _ in range(50)]
        stream_b = [b.transfer_fails("ssd", 0.0) for _ in range(50)]
        stream_b += [b.corrupts_save() for _ in range(50)]
        assert stream_a == stream_b
        assert a.injected_transfer_faults == b.injected_transfer_faults
        assert a.injected_corruptions == b.injected_corruptions

    def test_different_seeds_diverge(self):
        base = dict(ssd_fault_rate=0.5)
        a = FaultInjector(FaultConfig(seed=1, **base))
        b = FaultInjector(FaultConfig(seed=2, **base))
        stream_a = [a.transfer_fails("ssd", 0.0) for _ in range(64)]
        stream_b = [b.transfer_fails("ssd", 0.0) for _ in range(64)]
        assert stream_a != stream_b

    def test_zero_rate_never_fires_and_consumes_no_rng(self):
        injector = FaultInjector(FaultConfig(seed=3))
        before = injector._rng.getstate()
        assert not any(injector.transfer_fails("ssd", 0.0) for _ in range(20))
        assert not any(injector.corrupts_save() for _ in range(20))
        assert not any(injector.loses_save() for _ in range(20))
        assert injector._rng.getstate() == before

    def test_rate_one_always_fires(self):
        injector = FaultInjector(
            FaultConfig(seed=3, ssd_fault_rate=1.0, corruption_rate=1.0, loss_rate=1.0)
        )
        assert injector.transfer_fails("ssd", 0.0)
        assert injector.corrupts_save()
        assert injector.loses_save()
        assert injector.injected_transfer_faults == 1
        assert injector.injected_corruptions == 1
        assert injector.injected_losses == 1

    def test_per_channel_rates(self):
        injector = FaultInjector(FaultConfig(seed=3, ssd_fault_rate=1.0))
        assert injector.transfer_fails("ssd", 0.0)
        assert not injector.transfer_fails("pcie-h2d", 0.0)
        assert not injector.transfer_fails("nvlink", 0.0)

    def test_bandwidth_factor_uses_matching_windows_only(self):
        config = FaultConfig(
            degraded_windows=(
                DegradedWindow(start=0.0, duration=10.0, factor=0.2, channel="ssd"),
                DegradedWindow(start=0.0, duration=10.0, factor=0.5, channel="pcie-h2d"),
            )
        )
        injector = FaultInjector(config)
        assert injector.bandwidth_factor("ssd", 5.0) == 0.2
        assert injector.bandwidth_factor("pcie-h2d", 5.0) == 0.5
        assert injector.bandwidth_factor("pcie-d2h", 5.0) == 1.0
        assert injector.bandwidth_factor("ssd", 15.0) == 1.0


class TestTierHealth:
    def test_trips_after_threshold_consecutive_failures(self):
        health = TierHealth(threshold=3, cooldown=10.0)
        assert not health.record_failure(0.0)
        assert not health.record_failure(1.0)
        assert health.record_failure(2.0)  # third consecutive: trips
        assert health.state is BreakerState.OPEN
        assert health.trips == 1
        assert not health.allows(5.0)

    def test_success_resets_consecutive_count(self):
        health = TierHealth(threshold=3, cooldown=10.0)
        health.record_failure(0.0)
        health.record_failure(1.0)
        health.record_success()
        assert not health.record_failure(2.0)
        assert health.state is BreakerState.CLOSED

    def test_half_open_probe_recovers(self):
        health = TierHealth(threshold=1, cooldown=10.0)
        health.record_failure(0.0)
        assert not health.allows(5.0)
        assert health.allows(10.0)  # cooldown elapsed: half-open probe
        assert health.state is BreakerState.HALF_OPEN
        assert health.record_success()
        assert health.state is BreakerState.CLOSED
        assert health.recoveries == 1
        assert health.allows(11.0)

    def test_failed_probe_reopens(self):
        health = TierHealth(threshold=1, cooldown=10.0)
        health.record_failure(0.0)
        assert health.allows(10.0)
        assert health.record_failure(10.0)  # probe fails: re-trip
        assert health.state is BreakerState.OPEN
        assert health.trips == 2
        assert not health.allows(15.0)
        assert health.allows(20.0)  # new cooldown from the re-trip
