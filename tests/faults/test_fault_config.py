"""Tests for FaultConfig, DegradedWindow, TierLossEvent and the presets."""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    DegradedWindow,
    FaultConfig,
    TierLossEvent,
    fault_profile,
)


class TestFaultConfigValidation:
    def test_defaults_are_inert(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize(
        "attr",
        ["ssd_fault_rate", "pcie_fault_rate", "corruption_rate", "loss_rate"],
    )
    def test_rates_must_be_probabilities(self, attr):
        with pytest.raises(ValueError):
            FaultConfig(**{attr: -0.1})
        with pytest.raises(ValueError):
            FaultConfig(**{attr: 1.5})

    @pytest.mark.parametrize(
        "attr",
        ["ssd_fault_rate", "pcie_fault_rate", "corruption_rate", "loss_rate"],
    )
    def test_any_positive_rate_enables(self, attr):
        assert FaultConfig(**{attr: 0.01}).enabled

    def test_windows_and_loss_events_enable(self):
        window = DegradedWindow(start=0.0, duration=1.0, factor=0.5)
        assert FaultConfig(degraded_windows=(window,)).enabled
        assert FaultConfig(tier_loss_events=(TierLossEvent(at=1.0),)).enabled

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)

    def test_breaker_knobs_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            FaultConfig(breaker_cooldown=0.0)

    def test_backoff_is_exponential_and_capped(self):
        config = FaultConfig(retry_backoff=1e-3, retry_backoff_cap=3e-3)
        assert config.backoff(1) == pytest.approx(1e-3)
        assert config.backoff(2) == pytest.approx(2e-3)
        assert config.backoff(3) == pytest.approx(3e-3)  # capped (would be 4e-3)
        assert config.backoff(10) == pytest.approx(3e-3)
        with pytest.raises(ValueError):
            config.backoff(0)


class TestDegradedWindow:
    def test_one_shot_window(self):
        window = DegradedWindow(start=10.0, duration=5.0, factor=0.2)
        assert not window.active(9.9)
        assert window.active(10.0)
        assert window.active(14.9)
        assert not window.active(15.0)
        assert not window.active(100.0)

    def test_periodic_window(self):
        window = DegradedWindow(start=10.0, duration=5.0, factor=0.2, period=20.0)
        assert window.active(12.0)
        assert not window.active(18.0)
        assert window.active(32.0)  # second period
        assert not window.active(38.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradedWindow(start=-1.0, duration=1.0, factor=0.5)
        with pytest.raises(ValueError):
            DegradedWindow(start=0.0, duration=0.0, factor=0.5)
        with pytest.raises(ValueError):
            DegradedWindow(start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError):
            DegradedWindow(start=0.0, duration=1.0, factor=1.5)
        with pytest.raises(ValueError):
            DegradedWindow(start=0.0, duration=5.0, factor=0.5, period=2.0)


class TestTierLossEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            TierLossEvent(at=-1.0)
        with pytest.raises(ValueError):
            TierLossEvent(at=0.0, tier="l2-cache")

    def test_valid_tiers(self):
        for tier in ("hbm", "dram", "disk"):
            assert TierLossEvent(at=0.0, tier=tier).tier == tier


class TestFaultProfiles:
    def test_none_profile_is_none(self):
        assert fault_profile("none") is None

    @pytest.mark.parametrize("name", [p for p in FAULT_PROFILES if p != "none"])
    def test_named_profiles_are_enabled(self, name):
        config = fault_profile(name, seed=5)
        assert config is not None
        assert config.enabled
        assert config.seed == 5

    def test_chaos_covers_every_fault_class(self):
        config = fault_profile("chaos")
        assert config.ssd_fault_rate > 0
        assert config.pcie_fault_rate > 0
        assert config.corruption_rate > 0
        assert config.loss_rate > 0
        assert config.degraded_windows
        assert config.tier_loss_events

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            fault_profile("evil-raid-controller")
