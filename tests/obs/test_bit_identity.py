"""Instrumentation must be pure observation: bit-identical results.

The acceptance property of the whole observability layer — attaching a
span tracer, metrics probes and the event-loop profiler must not change
a single float of the run's outcome.  Checked here by comparing complete
``RunResult`` / ``ClusterResult`` values (frozen dataclasses with value
equality) between instrumented and plain runs of identical workloads.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine
from repro.faults import (
    FaultConfig,
    ReplicaCrash,
    ReplicaDrain,
    ReplicaFaultSchedule,
)
from repro.models import MiB, get_model
from repro.obs import EventLoopProfiler, SpanTracer
from repro.workload import WorkloadSpec, generate_trace
from repro.workload.trace import Conversation, Trace, Turn

turn_strategy = st.builds(
    Turn,
    q_tokens=st.integers(min_value=1, max_value=2000),
    a_tokens=st.integers(min_value=1, max_value=800),
    think_time=st.floats(min_value=0.0, max_value=60.0),
)


@st.composite
def trace_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    conversations = []
    for sid in range(n):
        turns = draw(st.lists(turn_strategy, min_size=1, max_size=4))
        arrival = draw(st.floats(min_value=0.0, max_value=30.0))
        conversations.append(Conversation(sid, arrival, tuple(turns)))
    return Trace(conversations=conversations)


def run_engine(trace, instrumented, dram_mib=400):
    engine = ServingEngine(
        get_model("llama-13b"),
        engine_config=EngineConfig(batch_size=4),
        store_config=StoreConfig(dram_bytes=int(dram_mib * MiB)),
    )
    if instrumented:
        SpanTracer().attach_engine(engine)
        profiler = EventLoopProfiler(sample_every=2)
        profiler.install(engine.sim)
    return engine.run(trace)


class TestEngineBitIdentity:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace=trace_strategy())
    def test_instrumented_run_is_bit_identical(self, trace):
        assert run_engine(trace, False) == run_engine(trace, True)

    def test_identity_holds_under_store_pressure(self):
        """A tight DRAM budget exercises spill/prefetch span emission."""
        trace = generate_trace(WorkloadSpec(n_sessions=50, seed=17))
        assert run_engine(trace, False, dram_mib=300) == run_engine(
            trace, True, dram_mib=300
        )


class TestClusterBitIdentity:
    def run_cluster(self, instrumented, fault_config=None):
        cluster = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=2, router=RouterName.AFFINITY),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(),
            fault_config=fault_config,
        )
        if instrumented:
            SpanTracer().attach_cluster(cluster)
            EventLoopProfiler().install(cluster.sim)
        trace = generate_trace(WorkloadSpec(n_sessions=60, seed=23))
        return cluster.run(trace)

    def test_instrumented_cluster_run_is_bit_identical(self):
        assert self.run_cluster(False) == self.run_cluster(True)

    def test_instrumented_chaos_run_is_bit_identical(self):
        """Crash/failover/drain span emission is pure observation too."""
        faults = FaultConfig(
            seed=3,
            replica_schedule=ReplicaFaultSchedule(
                crashes=(ReplicaCrash(at=20.0, replica=1, downtime=30.0),),
                drains=(ReplicaDrain(at=90.0, replica=0),),
            ),
        )
        assert self.run_cluster(False, faults) == self.run_cluster(
            True, faults
        )
