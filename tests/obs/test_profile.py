"""EventLoopProfiler counting, sampling and reporting."""

import pytest

from repro.config import EngineConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.obs import EventLoopProfiler
from repro.sim.loop import Simulator


class TestSampling:
    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError, match="sample_every"):
            EventLoopProfiler(sample_every=0)

    def test_counts_every_event_samples_a_subset(self):
        sim = Simulator()
        profiler = EventLoopProfiler(sample_every=4)
        profiler.install(sim)
        assert sim.profiler is profiler

        def tick() -> None:
            pass

        for i in range(20):
            sim.at(float(i), tick)
        sim.run()
        report = profiler.report()
        assert report.n_events == 20
        (row,) = report.rows
        assert row.count == 20
        assert row.sampled == 20 // 4
        assert "tick" in row.name

    def test_report_before_install_is_empty(self):
        report = EventLoopProfiler().report()
        assert report.n_events == 0
        assert report.wall_s == 0.0
        assert report.rows == ()


class TestEngineRun:
    def test_profiled_run_reports_event_costs(self):
        engine = ServingEngine(
            get_model("llama-13b"), engine_config=EngineConfig(batch_size=8)
        )
        profiler = EventLoopProfiler(sample_every=2)
        profiler.install(engine.sim)
        from repro.workload import WorkloadSpec, generate_trace

        result = engine.run(
            generate_trace(WorkloadSpec(n_sessions=30, seed=13))
        )
        report = profiler.report()
        assert report.n_events == result.events_processed
        assert report.wall_s > 0
        assert report.events_per_s > 0
        assert report.rows
        # Rows are sorted by estimated total cost, and shares sum to ~1.
        costs = [row.est_total_s for row in report.rows]
        assert costs == sorted(costs, reverse=True)
        assert sum(row.share for row in report.rows) == pytest.approx(1.0)
        text = report.format()
        assert "events/s" in text
        assert "callback" in text
