"""Output contract of the event-loop profile artifact.

CI uploads ``BENCH_profile.txt`` per commit and the regression harness
records ``profile.top_callbacks`` in ``BENCH_sim.json``; downstream
tooling (and humans diffing two commits' artifacts) rely on the header
line and the table shape staying stable.  These tests pin that contract
against a freshly profiled replay and against the checked-in baseline.
"""

import json
import re
from pathlib import Path

from repro.config import EngineConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.obs import EventLoopProfiler
from repro.workload import WorkloadSpec, generate_trace

BENCH_SIM = Path(__file__).resolve().parents[2] / "BENCH_sim.json"

HEADER_RE = re.compile(
    r"^event loop: (?P<events>\d+) events in (?P<wall>\d+\.\d{3})s wall "
    r"\((?P<eps>[\d,]+) events/s, sampled 1/(?P<every>\d+)\)$"
)


def profiled_report(n_sessions: int = 40, sample_every: int = 4):
    engine = ServingEngine(
        get_model("llama-13b"), engine_config=EngineConfig(batch_size=8)
    )
    profiler = EventLoopProfiler(sample_every=sample_every)
    profiler.install(engine.sim)
    result = engine.run(generate_trace(WorkloadSpec(n_sessions=n_sessions, seed=7)))
    return profiler.report(), result


class TestFormattedReport:
    def test_header_line_contract(self):
        report, result = profiled_report(sample_every=8)
        header = report.format().splitlines()[0]
        match = HEADER_RE.match(header)
        assert match, header
        assert int(match["events"]) == result.events_processed
        assert int(match["every"]) == 8

    def test_table_shape(self):
        report, _ = profiled_report()
        lines = report.format().splitlines()
        # Header, column row, separator, then one line per callback row.
        columns = lines[1]
        for name in ("callback", "count", "sampled", "mean µs", "est total s", "share"):
            assert name in columns, columns
        assert set(lines[2]) <= {"-", " "}, lines[2]
        body = lines[3:]
        assert len(body) == len(report.rows)
        for line, row in zip(body, report.rows):
            assert line.lstrip().startswith(row.name), (line, row.name)
            assert line.rstrip().endswith("%"), line

    def test_rows_name_continuation_classes_not_closures(self):
        """Engine events dispatch through slotted continuation instances,
        so profile rows carry class names — a ``<locals>`` qualname means
        a per-event closure crept back into the turn path."""
        report, _ = profiled_report()
        names = {row.name for row in report.rows}
        assert any(
            name in names for name in ("DecodeChunkDone", "PrefillSliceDone")
        ), names
        engine_rows = {n for n in names if "<locals>" in n}
        assert not engine_rows, engine_rows


class TestCheckedInBaseline:
    def test_profile_section_contract(self):
        payload = json.loads(BENCH_SIM.read_text())
        profile = payload["profile"]
        top = profile["top_callbacks"]
        assert isinstance(top, list) and top, profile
        assert all(isinstance(name, str) and name for name in top)
        assert profile["out_path"] == "BENCH_profile.txt"
        # The shares recorded for the top callbacks are valid fractions
        # and the pre-refactor epoch-guard closure stays demoted.
        shares = profile["top_shares"]
        assert set(shares) == set(top)
        assert all(0.0 <= share <= 1.0 for share in shares.values())
        assert profile["epoch_guard_share"] < 0.40
        assert all("<locals>" not in name for name in top), top
