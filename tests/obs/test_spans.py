"""SpanTracer recording, validation and attachment mechanics."""

import pytest

from repro.engine import ServingEngine
from repro.models import get_model
from repro.obs import SpanTracer
from repro.sim.channel import Channel
from repro.workload import WorkloadSpec, generate_trace


def small_trace(n_sessions=30, seed=11):
    return generate_trace(WorkloadSpec(n_sessions=n_sessions, seed=seed))


class TestRecording:
    def test_span_is_stored(self):
        tracer = SpanTracer()
        tracer.span("prefill", "gpu", 1.0, 2.5, lane="gpu", track="engine")
        (span,) = tracer.spans
        assert span.name == "prefill"
        assert span.end - span.start == pytest.approx(1.5)

    def test_span_rejects_negative_duration(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="ends before it starts"):
            tracer.span("prefill", "gpu", 2.0, 1.0, lane="gpu", track="engine")

    def test_async_span_rejects_negative_duration(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="ends before it starts"):
            tracer.async_span("turn", "turn", "1:0", 2.0, 1.0, track="engine")

    def test_len_counts_all_kinds(self):
        tracer = SpanTracer()
        tracer.span("a", "c", 0.0, 1.0, lane="l", track="t")
        tracer.counter("n", 0.5, track="t", values=(("v", 1.0),))
        tracer.async_span("b", "c", "id", 0.0, 1.0, track="t")
        assert len(tracer) == 3


class TestChannelObservation:
    def test_transfer_emits_xfer_span(self):
        tracer = SpanTracer()
        channel = Channel("pcie", bandwidth=1e9)
        tracer.observe_channel(channel, "engine")
        done = channel.transfer(1.0, 2 * 10**9)
        (span,) = tracer.spans
        assert span.name == "xfer"
        assert span.lane == "pcie"
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(done)
        assert span.args == {"bytes": 2 * 10**9}

    def test_queued_transfer_span_starts_when_link_frees(self):
        tracer = SpanTracer()
        channel = Channel("ssd", bandwidth=1e9)
        tracer.observe_channel(channel, "engine")
        channel.transfer(0.0, 10**9)  # busy until t=1
        channel.transfer(0.0, 10**9)  # queued: starts at t=1
        assert tracer.spans[1].start == pytest.approx(1.0)
        assert tracer.spans[1].end == pytest.approx(2.0)


class TestEngineAttachment:
    def test_attach_engine_installs_all_hooks(self):
        engine = ServingEngine(get_model("llama-13b"))
        tracer = SpanTracer()
        tracer.attach_engine(engine)
        assert engine.tracer is tracer
        assert engine.store is not None
        assert engine.store.tracer is tracer
        assert engine.store.trace_track == engine.name
        for channel in (engine.pcie_h2d, engine.pcie_d2h, engine.ssd):
            assert channel.on_transfer is not None

    def test_run_emits_core_lifecycle_spans(self):
        engine = ServingEngine(get_model("llama-13b"))
        tracer = SpanTracer()
        tracer.attach_engine(engine)
        result = engine.run(small_trace())
        names = {span.name for span in tracer.spans}
        assert {"queue-wait", "prefill", "decode", "preload", "xfer"} <= names
        assert len(tracer.async_spans) == result.summary.n_turns
        assert all(a.name == "turn" for a in tracer.async_spans)
        assert all(span.track == engine.name for span in tracer.spans)

    def test_affinity_spill_emits_one_migrate_span_per_migration(self):
        from repro.cluster import ClusterConfig, ClusterEngine, RouterName
        from repro.config import EngineConfig, StoreConfig

        cluster = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(
                n_instances=4,
                router=RouterName.AFFINITY,
                # Zero threshold: any load imbalance spills, so the run
                # actually exercises the migration path.
                affinity_spill_tokens=0,
            ),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(),
        )
        tracer = SpanTracer()
        tracer.attach_cluster(cluster)
        result = cluster.run(
            generate_trace(
                WorkloadSpec(n_sessions=120, arrival_rate=4.0, seed=7)
            )
        )
        migrations = [s for s in tracer.spans if s.name == "migrate"]
        assert result.migrations > 0
        assert len(migrations) == result.migrations
        for span in migrations:
            assert span.track == "cluster"
            assert span.lane == "cluster-net"
            assert span.args is not None
            assert span.args["from"] != span.args["to"]

    def test_preload_spans_only_for_reused_turns(self):
        engine = ServingEngine(get_model("llama-13b"))
        tracer = SpanTracer()
        tracer.attach_engine(engine)
        result = engine.run(small_trace())
        preloads = [s for s in tracer.spans if s.name == "preload"]
        s = result.summary
        assert len(preloads) == s.hits_dram + s.hits_disk
        for span in preloads:
            assert span.args is not None
            hidden = span.args["hidden_s"]
            exposed = span.args["exposed_s"]
            assert isinstance(hidden, float) and isinstance(exposed, float)
            assert hidden + exposed == pytest.approx(span.end - span.start)
