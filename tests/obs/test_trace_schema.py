"""Golden-file pinning of the Chrome-trace export schema.

The span vocabulary, per-phase required fields and timeline ordering are
a contract: Perfetto (and any downstream tooling) must keep loading
traces across refactors.  ``golden_trace_schema.json`` is the checked-in
contract; changing it is an intentional, reviewed schema change.
"""

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, StoreConfig
from repro.faults import (
    FaultConfig,
    ReplicaCrash,
    ReplicaDrain,
    ReplicaFaultSchedule,
)
from repro.models import MiB, get_model
from repro.obs import SpanTracer, to_chrome_trace, write_chrome_trace
from repro.workload import WorkloadSpec, generate_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_trace_schema.json").read_text()
)


def traced_engine_run(n_sessions=60, dram_mib=None, seed=3):
    """A single-engine run; a tight DRAM budget forces spills/prefetches."""
    from repro.engine import ServingEngine

    store_config = StoreConfig()
    if dram_mib is not None:
        store_config = StoreConfig(dram_bytes=int(dram_mib * MiB))
    engine = ServingEngine(
        get_model("llama-13b"),
        engine_config=EngineConfig(batch_size=8),
        store_config=store_config,
    )
    tracer = SpanTracer()
    tracer.attach_engine(engine)
    engine.run(generate_trace(WorkloadSpec(n_sessions=n_sessions, seed=seed)))
    return tracer


def traced_cluster_run(n_sessions=60, seed=5):
    cluster = ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(n_instances=2, router=RouterName.AFFINITY),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
    )
    tracer = SpanTracer()
    tracer.attach_cluster(cluster)
    cluster.run(
        generate_trace(WorkloadSpec(n_sessions=n_sessions, seed=seed))
    )
    return tracer


def traced_chaos_run(n_sessions=80, seed=7):
    """A cluster run through a crash→restart window plus a drain."""
    schedule = ReplicaFaultSchedule(
        crashes=(ReplicaCrash(at=30.0, replica=1, downtime=40.0),),
        drains=(ReplicaDrain(at=120.0, replica=0),),
    )
    cluster = ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(n_instances=3, router=RouterName.AFFINITY),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
        fault_config=FaultConfig(seed=3, replica_schedule=schedule),
    )
    tracer = SpanTracer()
    tracer.attach_cluster(cluster)
    cluster.run(
        generate_trace(
            WorkloadSpec(n_sessions=n_sessions, arrival_rate=4.0, seed=seed)
        )
    )
    return tracer


@pytest.fixture(scope="module")
def engine_trace():
    return to_chrome_trace(traced_engine_run(dram_mib=600))


@pytest.fixture(scope="module")
def cluster_trace():
    return to_chrome_trace(traced_cluster_run())


@pytest.fixture(scope="module")
def chaos_trace():
    return to_chrome_trace(traced_chaos_run())


def non_meta_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] != "M"]


class TestGoldenSchema:
    @pytest.mark.parametrize(
        "fixture", ["engine_trace", "cluster_trace", "chaos_trace"]
    )
    def test_names_and_categories_are_pinned(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        span_names = set(GOLDEN["span_names"])
        async_names = set(GOLDEN["async_names"])
        counter_names = set(GOLDEN["counter_names"])
        categories = set(GOLDEN["categories"])
        for event in non_meta_events(trace):
            ph = event["ph"]
            if ph == "X":
                assert event["name"] in span_names, event
                assert event["cat"] in categories, event
            elif ph == "C":
                assert event["name"] in counter_names, event
            elif ph in ("b", "e"):
                assert event["name"] in async_names, event
                assert event["cat"] in categories, event
            else:
                pytest.fail(f"unexpected phase {ph!r}")

    @pytest.mark.parametrize(
        "fixture", ["engine_trace", "cluster_trace", "chaos_trace"]
    )
    def test_required_fields_per_phase(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        required = {ph: set(fields) for ph, fields in GOLDEN["required_fields"].items()}
        for event in trace["traceEvents"]:
            assert required[event["ph"]] <= set(event), event

    @pytest.mark.parametrize(
        "fixture", ["engine_trace", "cluster_trace", "chaos_trace"]
    )
    def test_metadata_first_then_monotonic_timestamps(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        events = trace["traceEvents"]
        first_non_meta = next(
            i for i, e in enumerate(events) if e["ph"] != "M"
        )
        assert all(e["ph"] == "M" for e in events[:first_non_meta])
        assert all(e["ph"] != "M" for e in events[first_non_meta:])
        timestamps = [e["ts"] for e in events[first_non_meta:]]
        assert timestamps == sorted(timestamps)
        assert all(ts >= 0 for ts in timestamps)
        assert all(
            e["dur"] >= 0 for e in events[first_non_meta:] if e["ph"] == "X"
        )

    def test_store_pressure_emits_spill_and_prefetch_spans(self, engine_trace):
        names = {e["name"] for e in non_meta_events(engine_trace)}
        assert "evict-spill" in names
        assert "prefetch" in names

    def test_chaos_run_emits_lifecycle_spans(self, chaos_trace):
        events = non_meta_events(chaos_trace)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        for name in ("crash", "failover", "drain"):
            assert name in by_name, f"expected a {name!r} span"
            assert all(e["cat"] == "cluster" for e in by_name[name])
        # The crash span is the whole downtime window.
        crash = by_name["crash"][0]
        assert crash["dur"] == pytest.approx(40.0 * 1e6)
        # Failovers happen inside the downtime window.
        for failover in by_name["failover"]:
            assert crash["ts"] <= failover["ts"] + failover["dur"]
            assert failover["ts"] + failover["dur"] <= crash["ts"] + crash["dur"]

    def test_async_turn_spans_pair_up(self, engine_trace):
        begins = [e for e in non_meta_events(engine_trace) if e["ph"] == "b"]
        ends = [e for e in non_meta_events(engine_trace) if e["ph"] == "e"]
        assert len(begins) == len(ends) > 0
        assert {e["id"] for e in begins} == {e["id"] for e in ends}


class TestOverlapVisibility:
    def test_preload_overlaps_prefill_on_the_timeline(self, engine_trace):
        """Section 3.2.1's point, visible in the trace: KV pre-loading
        windows overlap the prefill compute spans they feed."""
        events = non_meta_events(engine_trace)
        prefills = [e for e in events if e["name"] == "prefill"]
        preloads = [e for e in events if e["name"] == "preload"]
        assert preloads, "expected reused turns with preload spans"
        prefill_by_start = {
            (e["pid"], e["ts"]): e for e in prefills
        }
        overlapped = 0
        for preload in preloads:
            prefill = prefill_by_start.get((preload["pid"], preload["ts"]))
            if prefill is None:
                continue
            overlap = min(
                preload["ts"] + preload["dur"], prefill["ts"] + prefill["dur"]
            ) - max(preload["ts"], prefill["ts"])
            if overlap > 0:
                overlapped += 1
        assert overlapped > 0


class TestTrackAssignment:
    def test_cluster_trace_has_one_track_per_replica(self, cluster_trace):
        process_names = {
            e["args"]["name"]
            for e in cluster_trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"replica-0", "replica-1"} <= process_names

    def test_pids_are_deterministic(self):
        tracer = SpanTracer()
        tracer.span("prefill", "gpu", 0.0, 1.0, lane="gpu", track="b")
        tracer.span("prefill", "gpu", 0.0, 1.0, lane="gpu", track="a")
        trace = to_chrome_trace(tracer)
        pids = {
            e["args"]["name"]: e["pid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert pids == {"a": 0, "b": 1}


class TestWriter:
    def test_written_file_round_trips(self, tmp_path):
        tracer = traced_engine_run(n_sessions=20)
        out = tmp_path / "trace.json"
        n_events = write_chrome_trace(out, tracer)
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == n_events > 0

    def test_export_is_deterministic(self):
        a = to_chrome_trace(traced_engine_run(n_sessions=20))
        b = to_chrome_trace(traced_engine_run(n_sessions=20))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
