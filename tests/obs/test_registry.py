"""MetricsRegistry recording, merging and stable export schema."""

import json

import pytest

from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.probes import (
    collect_engine_metrics,
    ingest_tracer_spans,
)
from repro.obs.registry import SCHEMA_VERSION
from repro.workload import WorkloadSpec, generate_trace


class TestRecording:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.counter("hits")
        r.counter("hits", 4)
        assert r.counter_value("hits") == 5
        assert r.counter_value("absent") == 0

    def test_negative_counter_increment_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="must be >= 0"):
            r.counter("hits", -1)

    def test_gauges_keep_latest(self):
        r = MetricsRegistry()
        r.gauge("occupancy", 0.3)
        r.gauge("occupancy", 0.7)
        assert r.gauge_value("occupancy") == 0.7
        assert r.gauge_value("absent") is None

    def test_histograms_observe(self):
        r = MetricsRegistry()
        for v in (0.1, 0.2, 0.4):
            r.observe("ttft", v)
        hist = r.histogram("ttft")
        assert hist is not None
        assert len(hist) == 3
        assert hist.quantile(1.0) == pytest.approx(0.4, rel=0.02)


class TestMerge:
    def test_merge_combines_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", 2)
        b.counter("c", 3)
        a.gauge("g", 1.0)
        b.gauge("g", 2.0)
        a.observe("h", 0.1)
        b.observe("h", 0.2)
        a.merge(b)
        assert a.counter_value("c") == 5
        assert a.gauge_value("g") == 2.0
        hist = a.histogram("h")
        assert hist is not None and len(hist) == 2


class TestExportSchema:
    def test_snapshot_shape_is_stable(self):
        r = MetricsRegistry()
        r.counter("c", 1)
        r.gauge("g", 0.5)
        r.observe("h", 0.3)
        snap = r.snapshot()
        assert snap["schema_version"] == SCHEMA_VERSION
        assert set(snap) == {"schema_version", "counters", "gauges", "histograms"}
        assert set(snap["histograms"]["h"]) == {"count", "p50", "p95", "p99", "max"}

    def test_json_is_sorted_and_deterministic(self):
        r = MetricsRegistry()
        r.counter("b", 1)
        r.counter("a", 1)
        text = r.to_json()
        assert text == r.to_json()
        parsed = json.loads(text)
        assert list(parsed["counters"]) == ["a", "b"]

    def test_csv_rows(self):
        r = MetricsRegistry()
        r.counter("c", 2)
        r.gauge("g", 0.5)
        r.observe("h", 0.3)
        lines = r.to_csv().strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        kinds = [line.split(",")[0] for line in lines[1:]]
        assert kinds == ["counter", "gauge"] + ["histogram"] * 5


class TestProbes:
    @pytest.fixture(scope="class")
    def run(self):
        engine = ServingEngine(
            get_model("llama-13b"),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(),
        )
        tracer = SpanTracer()
        tracer.attach_engine(engine)
        result = engine.run(
            generate_trace(WorkloadSpec(n_sessions=40, seed=9))
        )
        return engine, tracer, result

    def test_engine_probe_matches_summary(self, run):
        engine, _, result = run
        registry = collect_engine_metrics(engine)
        s = result.summary
        assert registry.counter_value("turns.served") == s.n_turns
        assert registry.gauge_value("rates.hit") == pytest.approx(s.hit_rate)
        assert registry.counter_value("hits.dram") == s.hits_dram
        assert registry.counter_value("store.stats.saves") > 0
        assert registry.gauge_value("store.dram.occupancy") is not None
        util = registry.gauge_value("channel.pcie-h2d.utilisation")
        assert util is not None and 0.0 <= util <= 1.0

    def test_span_ingestion_builds_histograms(self, run):
        _, tracer, result = run
        registry = ingest_tracer_spans(tracer)
        assert registry.counter_value("span.turn.count") == result.summary.n_turns
        hist = registry.histogram("span.prefill")
        assert hist is not None and len(hist) == result.summary.n_turns
