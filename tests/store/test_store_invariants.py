"""Randomized-operation stress test for AttentionStore.check_invariants().

Drives the store through long random sequences of saves, lookups, drops,
truncations, prefetches and TTL sweeps — with and without fault injection —
and checks the internal bookkeeping invariants after every operation.
"""

import random

import pytest

from repro.config import StoreConfig
from repro.faults import FaultConfig, FaultInjector
from repro.sim import Channel
from repro.store import AttentionStore, ListQueueView, Tier

KB = 1000
N_OPS = 400
N_SESSIONS = 12


def build_store(fault_config=None, **config_overrides):
    config = StoreConfig(
        dram_bytes=60 * KB,
        ssd_bytes=200 * KB,
        block_bytes=KB,
        dram_buffer_fraction=0.1,
        **config_overrides,
    )
    injector = FaultInjector(fault_config) if fault_config is not None else None
    return AttentionStore(config, KB, Channel("ssd", 1e9), fault_injector=injector)


def run_random_ops(store: AttentionStore, rng: random.Random, n_ops: int = N_OPS):
    now = 0.0
    for _ in range(n_ops):
        now += rng.random()
        sid = rng.randrange(N_SESSIONS)
        op = rng.random()
        if op < 0.45:
            queue = ListQueueView(rng.sample(range(N_SESSIONS), rng.randrange(4)))
            pinned = frozenset(rng.sample(range(N_SESSIONS), rng.randrange(3)))
            store.save(sid, rng.randint(1, 40), now=now, queue=queue, pinned=pinned)
        elif op < 0.70:
            store.lookup(sid, now)
        elif op < 0.80:
            store.drop(sid)
        elif op < 0.88:
            store.truncate(sid, rng.randint(0, 30))
        elif op < 0.96:
            queue = ListQueueView(rng.sample(range(N_SESSIONS), rng.randrange(1, 5)))
            store.prefetch(queue, now=now)
        else:
            store.sweep_expired(now)
        store.check_invariants()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invariants_hold_without_faults(seed):
    store = build_store()
    run_random_ops(store, random.Random(seed))
    store.check_invariants()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invariants_hold_under_chaos_faults(seed):
    fault_config = FaultConfig(
        seed=seed,
        ssd_fault_rate=0.2,
        corruption_rate=0.1,
        loss_rate=0.05,
        max_retries=1,
        breaker_threshold=3,
        breaker_cooldown=5.0,
    )
    store = build_store(fault_config)
    run_random_ops(store, random.Random(seed + 100))
    store.check_invariants()


def test_invariants_hold_with_ttl_and_tier_loss():
    store = build_store(ttl_seconds=20.0)
    rng = random.Random(7)
    now = 0.0
    for step in range(N_OPS):
        now += rng.random()
        store.save(rng.randrange(N_SESSIONS), rng.randint(1, 30), now=now)
        if step % 50 == 25:
            store.lose_tier(Tier.DRAM if step % 100 == 25 else Tier.DISK)
        if step % 17 == 0:
            store.sweep_expired(now)
        store.check_invariants()


def test_check_invariants_catches_corruption_of_totals():
    store = build_store()
    store.save(1, 10, now=0.0)
    store.check_invariants()
    store._total_item_bytes += 1  # simulate a bookkeeping bug
    with pytest.raises(AssertionError):
        store.check_invariants()
