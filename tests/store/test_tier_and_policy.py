"""Tests for storage tiers and eviction policies."""

import pytest

from repro.store import (
    FIFOPolicy,
    KVCacheItem,
    ListQueueView,
    LRUPolicy,
    SchedulerAwarePolicy,
    StorageTier,
    Tier,
)
from repro.store.policy import EmptyQueueView


def make_item(sid, n_tokens=10, last_access=0.0, bytes_per_token=10):
    return KVCacheItem(
        session_id=sid,
        n_tokens=n_tokens,
        n_bytes=n_tokens * bytes_per_token,
        tier=Tier.DRAM,
        allocation=None,
        last_access=last_access,
    )


def make_tier(capacity=10_000, block=10):
    return StorageTier(Tier.DRAM, capacity, block)


class TestStorageTier:
    def test_admit_and_lookup(self):
        tier = make_tier()
        tier.admit(make_item(1))
        assert 1 in tier
        assert tier.get(1).session_id == 1
        assert len(tier) == 1

    def test_admit_duplicate_rejected(self):
        tier = make_tier()
        tier.admit(make_item(1))
        with pytest.raises(ValueError, match="already resident"):
            tier.admit(make_item(1))

    def test_remove_frees_blocks(self):
        tier = make_tier()
        tier.admit(make_item(1, n_tokens=50))
        used = tier.used_bytes
        assert used == 500
        tier.remove(1)
        assert tier.used_bytes == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            make_tier().remove(42)

    def test_fifo_order_is_admission_order(self):
        tier = make_tier()
        for sid in (3, 1, 2):
            tier.admit(make_item(sid))
        assert [i.session_id for i in tier.iter_fifo()] == [3, 1, 2]

    def test_lru_order_updates_on_touch(self):
        tier = make_tier()
        for sid in (1, 2, 3):
            tier.admit(make_item(sid))
        tier.touch(1)
        assert [i.session_id for i in tier.iter_lru()] == [2, 3, 1]

    def test_touch_missing_is_noop(self):
        make_tier().touch(99)

    def test_resize(self):
        tier = make_tier()
        tier.admit(make_item(1, n_tokens=50))
        tier.resize(1, 20, 200)
        item = tier.get(1)
        assert item.n_tokens == 20
        assert item.n_bytes == 200
        assert tier.used_bytes == 200

    def test_can_fit(self):
        tier = make_tier(capacity=100, block=10)
        tier.admit(make_item(1, n_tokens=5))  # 50 bytes
        assert tier.can_fit(50)
        assert not tier.can_fit(51)


class TestLRUPolicy:
    def test_picks_least_recent(self):
        tier = make_tier()
        tier.admit(make_item(1))
        tier.admit(make_item(2))
        tier.touch(1)
        victim = LRUPolicy().choose_victim(tier, EmptyQueueView())
        assert victim.session_id == 2

    def test_respects_pinned(self):
        tier = make_tier()
        tier.admit(make_item(1))
        tier.admit(make_item(2))
        victim = LRUPolicy().choose_victim(tier, EmptyQueueView(), frozenset({1}))
        assert victim.session_id == 2

    def test_all_pinned_returns_none(self):
        tier = make_tier()
        tier.admit(make_item(1))
        assert LRUPolicy().choose_victim(tier, EmptyQueueView(), frozenset({1})) is None

    def test_skips_in_flight(self):
        tier = make_tier()
        a = make_item(1)
        a.fetch_in_flight = True
        tier.admit(a)
        tier.admit(make_item(2))
        assert LRUPolicy().choose_victim(tier, EmptyQueueView()).session_id == 2


class TestFIFOPolicy:
    def test_picks_earliest_admitted(self):
        tier = make_tier()
        tier.admit(make_item(2))
        tier.admit(make_item(1))
        tier.touch(2)  # LRU would now pick 1; FIFO must still pick 2
        assert FIFOPolicy().choose_victim(tier, EmptyQueueView()).session_id == 2


class TestSchedulerAwarePolicy:
    def test_prefers_item_outside_window(self):
        tier = make_tier()
        tier.admit(make_item(1))
        tier.admit(make_item(2))
        queue = ListQueueView([1])  # session 1 has an upcoming job
        victim = SchedulerAwarePolicy().choose_victim(tier, queue)
        assert victim.session_id == 2

    def test_all_in_window_evicts_furthest(self):
        """Section 3.3.2: the window is scanned tail-to-head."""
        tier = make_tier()
        for sid in (1, 2, 3):
            tier.admit(make_item(sid))
        queue = ListQueueView([2, 3, 1])  # session 1 is furthest away
        victim = SchedulerAwarePolicy().choose_victim(tier, queue)
        assert victim.session_id == 1

    def test_window_limit_cuts_protection(self):
        tier = make_tier()
        tier.admit(make_item(1))
        tier.admit(make_item(2))
        queue = ListQueueView([1, 2])
        # Window of 1: session 2's job is beyond the look-ahead window, so
        # it is treated as outside and evicted first.
        victim = SchedulerAwarePolicy(window_limit=1).choose_victim(tier, queue)
        assert victim.session_id == 2

    def test_empty_queue_falls_back_to_lru(self):
        tier = make_tier()
        tier.admit(make_item(1, last_access=5.0))
        tier.admit(make_item(2, last_access=1.0))
        tier.touch(2)
        tier.touch(1)  # LRU order: 2 then 1
        tier.touch(2)  # LRU order: 1 then 2
        victim = SchedulerAwarePolicy().choose_victim(tier, EmptyQueueView())
        assert victim.session_id == 1

    def test_pinned_never_chosen(self):
        tier = make_tier()
        tier.admit(make_item(1))
        victim = SchedulerAwarePolicy().choose_victim(
            tier, EmptyQueueView(), frozenset({1})
        )
        assert victim is None

    def test_exact_scan_beyond_scan_limit(self):
        """The bounded pass falls back to a full scan when needed."""
        tier = make_tier(capacity=100_000)
        n = 10
        for sid in range(n):
            tier.admit(make_item(sid))
        # Every session queued; furthest is the queue tail.
        queue = ListQueueView(list(range(n)))
        policy = SchedulerAwarePolicy(scan_limit=3)
        victim = policy.choose_victim(tier, queue)
        assert victim.session_id == n - 1

    def test_rejects_bad_scan_limit(self):
        with pytest.raises(ValueError):
            SchedulerAwarePolicy(scan_limit=0)


class TestListQueueView:
    def test_position(self):
        q = ListQueueView([5, 7, 5])
        assert q.position(5) == 0  # first occurrence
        assert q.position(7) == 1
        assert q.position(9) is None

    def test_windows(self):
        q = ListQueueView([1, 2, 3])
        assert list(q.head_window(2)) == [1, 2]
        assert list(q.tail_window(2)) == [3, 2]
        assert len(q) == 3
