"""Crash-offline store behaviour: wipe_volatile / restore_offline /
decommission.

A replica crash loses everything volatile (HBM + DRAM) but the SSD tier
physically survives; the store parks the disk-resident items *offline* —
invisible to lookups for the whole downtime — and re-admits them when the
replica restarts, discarding any session whose authoritative copy moved
to a peer in the meantime (exactly-one-copy across the restart).
"""

import pytest

from repro.config import StoreConfig
from repro.sim import Channel
from repro.store import AttentionStore, LookupStatus, Tier

KB = 1000


def make_store(dram_items=2, disk_items=8, item_tokens=10):
    item_bytes = item_tokens * KB
    config = StoreConfig(
        dram_bytes=dram_items * item_bytes,
        ssd_bytes=disk_items * item_bytes,
        block_bytes=KB,
        dram_buffer_fraction=0.0,
    )
    return AttentionStore(config, KB, Channel("ssd", 1e9))


def store_with_disk_item(store=None):
    """Three saves into a 2-item DRAM: session 1 is evicted to disk."""
    store = store if store is not None else make_store()
    store.save(1, 10, now=0.0)
    store.save(2, 10, now=1.0)
    store.save(3, 10, now=2.0)
    assert store.get(1).tier is Tier.DISK
    return store


class TestWipeVolatile:
    def test_drops_volatile_and_parks_disk(self):
        store = store_with_disk_item()
        lost, parked = store.wipe_volatile(3.0)
        assert (lost, parked) == (2, 1)
        assert store.stats.lost_items == 2
        assert store.offline_items == 1
        store.check_invariants()

    def test_store_is_empty_during_downtime(self):
        store = store_with_disk_item()
        store.wipe_volatile(3.0)
        assert len(store) == 0
        assert not store.resident_sessions()
        # The parked copy is unreachable: lookups miss, extract finds
        # nothing to migrate.
        assert store.lookup(1, 4.0).status is LookupStatus.MISS
        assert store.extract(1) is None

    def test_wipe_without_disk_items(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        lost, parked = store.wipe_volatile(1.0)
        assert (lost, parked) == (1, 0)
        assert store.offline_items == 0


class TestRestoreOffline:
    def test_readmits_parked_items(self):
        store = store_with_disk_item()
        store.wipe_volatile(3.0)
        readmitted, discarded = store.restore_offline(10.0)
        assert (readmitted, discarded) == (1, 0)
        assert store.stats.restart_readmissions == 1
        assert store.offline_items == 0
        assert store.get(1).tier is Tier.DISK
        assert store.lookup(1, 11.0).status is LookupStatus.HIT_DISK
        store.check_invariants()

    def test_keep_predicate_discards_failed_over_sessions(self):
        store = store_with_disk_item()
        store.wipe_volatile(3.0)
        readmitted, discarded = store.restore_offline(10.0, keep=lambda sid: False)
        assert (readmitted, discarded) == (0, 1)
        assert store.stats.restart_discards == 1
        assert store.offline_items == 0
        assert len(store) == 0
        store.check_invariants()

    def test_readmitted_item_counts_ttl_from_restart(self):
        store = store_with_disk_item()
        pre_crash_access = store.get(1).last_access
        store.wipe_volatile(3.0)
        store.restore_offline(50.0)
        assert store.get(1).last_access == 50.0
        assert store.get(1).last_access > pre_crash_access

    def test_restore_is_idempotent_when_nothing_parked(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        assert store.restore_offline(1.0) == (0, 0)
        assert store.lookup(1, 2.0).status is LookupStatus.HIT_DRAM


class TestDecommission:
    def test_drops_every_resident_item(self):
        store = store_with_disk_item()
        assert store.decommission() == 3
        assert len(store) == 0
        store.check_invariants()

    def test_empty_store_is_a_noop(self):
        assert make_store().decommission() == 0


class TestInvariants:
    def test_offline_items_never_alias_resident_books(self):
        store = store_with_disk_item()
        store.wipe_volatile(3.0)
        # Saving a fresh copy for a parked session is legal (the session
        # recomputed elsewhere won't happen on *this* replica, but a new
        # session reusing the id must not trip accounting).
        store.check_invariants()
        store.restore_offline(5.0)
        store.check_invariants()

    def test_double_wipe_accumulates_offline(self):
        store = store_with_disk_item()
        store.wipe_volatile(3.0)
        store_with_disk_item(store)
        store.wipe_volatile(6.0)
        assert store.offline_items == 2
        readmitted, discarded = store.restore_offline(7.0)
        # Both parked generations restore; the stale duplicate of
        # session 1 degrades to a discard instead of corrupting books.
        assert readmitted + discarded == 2
        store.check_invariants()
