"""Tests for the AttentionStore facade."""

import pytest

from repro.config import EvictionPolicyName, StoreConfig
from repro.sim import Channel
from repro.store import (
    AttentionStore,
    ListQueueView,
    LookupStatus,
    Tier,
    make_policy,
)

KB = 1000


def make_store(
    dram_items=4,
    disk_items=16,
    item_tokens=10,
    bytes_per_token=KB,
    **config_overrides,
):
    """Store sized in units of a ``item_tokens``-token item."""
    item_bytes = item_tokens * bytes_per_token
    config = StoreConfig(
        dram_bytes=dram_items * item_bytes,
        ssd_bytes=disk_items * item_bytes,
        block_bytes=bytes_per_token,
        dram_buffer_fraction=0.0,
        **config_overrides,
    )
    return AttentionStore(config, bytes_per_token, Channel("ssd", 1e9))


class TestSaveAndLookup:
    def test_miss_when_absent(self):
        store = make_store()
        assert store.lookup(1, 0.0).status is LookupStatus.MISS

    def test_save_then_hit_dram(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        result = store.lookup(1, 1.0)
        assert result.status is LookupStatus.HIT_DRAM
        assert result.n_tokens == 10

    def test_save_replaces_existing(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        store.save(1, 20, now=1.0)
        assert store.lookup(1, 2.0).n_tokens == 20
        assert len(store) == 1

    def test_save_rejects_bad_tokens(self):
        with pytest.raises(ValueError):
            make_store().save(1, 0, now=0.0)

    def test_item_larger_than_dram_rejected(self):
        store = make_store(dram_items=1, item_tokens=10)
        assert store.save(1, 11, now=0.0) is None
        assert store.stats.save_rejections == 1

    def test_lookup_touches_lru(self):
        store = make_store(dram_items=2)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.lookup(1, 2.0)  # 1 becomes most recent
        store.save(3, 10, now=3.0)  # needs an eviction: victim must be 2
        assert store.get(2).tier is Tier.DISK
        assert store.get(1).tier is Tier.DRAM


class TestRejectedReplaceKeepsOldItem:
    """Regression: a rejected replacement save must not destroy the
    session's previous (still reusable) cached prefix."""

    def test_oversized_replacement_keeps_previous_item(self):
        store = make_store(dram_items=4, item_tokens=10)
        store.save(1, 10, now=0.0)
        assert store.save(1, 50, now=1.0) is None  # 50 tokens > 40-token DRAM
        assert store.stats.save_rejections == 1
        result = store.lookup(1, 2.0)
        assert result.status is LookupStatus.HIT_DRAM
        assert result.n_tokens == 10
        store.check_invariants()

    def test_pinned_eviction_failure_keeps_previous_item(self):
        store = make_store(dram_items=2)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        # Growing session 1 to 20 tokens needs session 2's space, but 2 is
        # pinned: the save is rejected and 1's old item must survive.
        assert store.save(1, 20, now=2.0, pinned=frozenset({2})) is None
        assert store.lookup(1, 3.0).n_tokens == 10
        assert store.get(2).tier is Tier.DRAM
        store.check_invariants()

    def test_rejected_replacement_preserves_disk_dirty_state(self):
        store = make_store(dram_items=2, disk_items=20)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.save(3, 10, now=2.0)  # spills 1 to disk (10 tokens written)
        assert store.ssd.bytes_moved == 10 * KB
        store.save(1, 12, now=3.0)  # promote-by-replace back into DRAM
        assert store.save(1, 50, now=4.0) is None  # oversized: rejected
        assert store.lookup(1, 5.0).n_tokens == 12
        # Delta write-back bookkeeping survived the failed replace: a
        # re-spill of session 1 writes only the 2 new tokens.
        before = store.ssd.bytes_moved
        store.save(4, 10, now=6.0)
        store.save(5, 10, now=7.0)
        assert store.ssd.bytes_moved - before <= 12 * KB
        store.check_invariants()


class TestEvictionCascade:
    def test_dram_overflow_demotes_to_disk(self):
        store = make_store(dram_items=2)
        for sid in range(3):
            store.save(sid, 10, now=float(sid))
        assert store.get(0).tier is Tier.DISK
        assert store.stats.evicted_to_disk == 1

    def test_disk_overflow_evicts_out(self):
        store = make_store(dram_items=1, disk_items=1)
        for sid in range(3):
            store.save(sid, 10, now=float(sid))
        assert len(store) == 2
        assert store.stats.evicted_out == 1
        assert 0 not in store

    def test_scheduler_aware_protects_queued(self):
        store = make_store(dram_items=2)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        queue = ListQueueView([1])  # session 1 has an upcoming job
        store.save(3, 10, now=2.0, queue=queue)
        assert store.get(1).tier is Tier.DRAM
        assert store.get(2).tier is Tier.DISK

    def test_demotion_writes_to_ssd_channel(self):
        store = make_store(dram_items=1)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        assert store.ssd.bytes_moved == 10 * KB

    def test_delta_writeback_on_respill(self):
        """A session re-spilled after growing writes only its new blocks."""
        store = make_store(dram_items=2, disk_items=20)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)  # both fit in DRAM
        store.save(3, 10, now=2.0)  # spills 1: full 10-token write
        assert store.ssd.bytes_moved == 10 * KB
        # Session 1 returns grown by 2 tokens; making room spills 2 and 3.
        store.save(1, 12, now=3.0)
        assert store.ssd.bytes_moved == 30 * KB
        # Spilling 1 again only writes the 2 tokens disk does not hold.
        store.save(4, 10, now=4.0)
        assert store.ssd.bytes_moved == 32 * KB


class TestTruncation:
    def test_truncate_decoupled_shrinks(self):
        store = make_store()
        store.save(1, 10, now=0.0, position_decoupled=True)
        assert store.truncate(1, 6)
        assert store.lookup(1, 1.0).n_tokens == 6
        assert store.stats.truncations == 1

    def test_truncate_embedded_invalidates(self):
        """The OF baseline: embedded positions make truncation fatal."""
        store = make_store()
        store.save(1, 10, now=0.0, position_decoupled=False)
        assert not store.truncate(1, 6)
        assert store.lookup(1, 1.0).status is LookupStatus.MISS
        assert store.stats.invalidated == 1

    def test_truncate_to_zero_drops(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        assert not store.truncate(1, 0)
        assert 1 not in store

    def test_truncate_noop_when_bigger(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        assert store.truncate(1, 15)
        assert store.get(1).n_tokens == 10

    def test_truncate_missing_returns_false(self):
        assert not make_store().truncate(9, 5)

    def test_apply_discard_list(self):
        """The Section 3.4 compression hook drops TDL tokens."""
        store = make_store()
        store.save(1, 10, now=0.0)
        assert store.apply_discard_list(1, 3)
        assert store.get(1).n_tokens == 7

    def test_apply_discard_list_validates(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        with pytest.raises(ValueError):
            store.apply_discard_list(1, -1)


class TestInvalidation:
    def test_invalidate_makes_miss(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        store.invalidate(1)
        assert store.lookup(1, 1.0).status is LookupStatus.MISS
        assert 1 not in store  # dropped by the lookup

    def test_invalidate_missing_is_noop(self):
        make_store().invalidate(12)


class TestTTL:
    def test_expired_item_misses(self):
        store = make_store(ttl_seconds=100.0)
        store.save(1, 10, now=0.0)
        assert store.lookup(1, 50.0).hit
        assert store.lookup(1, 200.0).status is LookupStatus.MISS

    def test_access_refreshes_ttl(self):
        store = make_store(ttl_seconds=100.0)
        store.save(1, 10, now=0.0)
        store.lookup(1, 90.0)
        assert store.lookup(1, 150.0).hit

    def test_sweep_removes_expired(self):
        store = make_store(ttl_seconds=100.0)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=150.0)
        assert store.sweep_expired(200.0) == 1
        assert 1 not in store
        assert 2 in store

    def test_no_ttl_never_expires(self):
        store = make_store()  # ttl None
        store.save(1, 10, now=0.0)
        assert store.lookup(1, 1e9).hit
        assert store.sweep_expired(1e9) == 0


class TestPrefetch:
    def test_prefetch_promotes_disk_items(self):
        store = make_store(dram_items=2)
        for sid in range(3):
            store.save(sid, 10, now=float(sid))
        assert store.get(0).tier is Tier.DISK
        issued = store.prefetch(ListQueueView([0]), now=10.0)
        assert [sid for sid, _ in issued] == [0]
        item = store.get(0)
        assert item.tier is Tier.DRAM
        assert item.fetch_in_flight
        assert item.dram_ready_at > 10.0

    def test_complete_fetch_clears_flag(self):
        store = make_store(dram_items=2)
        for sid in range(3):
            store.save(sid, 10, now=float(sid))
        store.prefetch(ListQueueView([0]), now=10.0)
        store.complete_fetch(0)
        assert not store.get(0).fetch_in_flight

    def test_prefetch_disabled(self):
        store = make_store(dram_items=2, enable_prefetch=False)
        for sid in range(3):
            store.save(sid, 10, now=float(sid))
        assert store.prefetch(ListQueueView([0]), now=10.0) == []

    def test_prefetch_skips_dram_residents(self):
        store = make_store(dram_items=3)
        store.save(1, 10, now=0.0)
        assert store.prefetch(ListQueueView([1]), now=1.0) == []

    def test_prefetch_respects_pinned_evictions(self):
        """Prefetch must not evict a pinned session to make room."""
        store = make_store(dram_items=1)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)  # 1 spills to disk
        issued = store.prefetch(
            ListQueueView([1]), now=2.0, pinned=frozenset({2})
        )
        assert issued == []  # no room without evicting the pinned item
        assert store.get(2).tier is Tier.DRAM


class TestWindows:
    def test_eviction_window_formula(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        capacity = store.dram_tier.capacity_bytes + store.disk_tier.capacity_bytes
        assert store.eviction_window_limit() == int(capacity / store.avg_item_bytes)

    def test_prefetch_window_formula(self):
        store = make_store()
        store.save(1, 10, now=0.0)
        expected = int(store.dram_tier.capacity_bytes / store.avg_item_bytes)
        assert store.prefetch_window_limit() == expected

    def test_avg_item_bytes_default(self):
        store = make_store()
        assert store.avg_item_bytes == 2048.0 * KB


class TestHBMCacheTier:
    def test_hbm_save_and_hit(self):
        store = make_store(hbm_cache_bytes=100 * KB)
        store.save_to_hbm_cache(1, 10, now=0.0)
        assert store.lookup(1, 1.0).status is LookupStatus.HIT_HBM

    def test_hbm_overflow_falls_to_dram(self):
        store = make_store(dram_items=4, hbm_cache_bytes=10 * KB)
        store.save_to_hbm_cache(1, 10, now=0.0)
        store.save_to_hbm_cache(2, 10, now=1.0)
        tiers = {store.get(1).tier, store.get(2).tier}
        assert Tier.HBM in tiers and Tier.DRAM in tiers

    def test_hbm_only_drops_on_overflow(self):
        store = make_store(dram_items=0, disk_items=0, hbm_cache_bytes=10 * KB)
        store.save_to_hbm_cache(1, 10, now=0.0)
        store.save_to_hbm_cache(2, 10, now=1.0)
        assert len(store) == 1

    def test_without_hbm_tier_delegates_to_dram(self):
        store = make_store()
        store.save_to_hbm_cache(1, 10, now=0.0)
        assert store.lookup(1, 1.0).status is LookupStatus.HIT_DRAM


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name",
        [
            EvictionPolicyName.SCHEDULER_AWARE,
            EvictionPolicyName.LRU,
            EvictionPolicyName.FIFO,
        ],
    )
    def test_known_policies(self, name):
        assert make_policy(name).name == name.value
