"""Store-level fault handling: validation at lookup, SSD retries, breaker,
tier loss.  Corrupt or lost items must never be served."""

import pytest

from repro.config import StoreConfig
from repro.faults import FaultConfig, FaultInjector
from repro.sim import Channel
from repro.store import AttentionStore, ListQueueView, LookupStatus, Tier

KB = 1000


def make_faulty_store(
    fault_config: FaultConfig,
    dram_items=4,
    disk_items=16,
    item_tokens=10,
    injector_cls=FaultInjector,
):
    item_bytes = item_tokens * KB
    config = StoreConfig(
        dram_bytes=dram_items * item_bytes,
        ssd_bytes=disk_items * item_bytes,
        block_bytes=KB,
        dram_buffer_fraction=0.0,
    )
    injector = injector_cls(fault_config)
    store = AttentionStore(
        config, KB, Channel("ssd", 1e9), fault_injector=injector
    )
    return store, injector


class ScriptedInjector(FaultInjector):
    """A FaultInjector whose transfer failures follow a fixed script."""

    def __init__(self, config):
        super().__init__(config)
        self.script: list[bool] = []

    def transfer_fails(self, channel, now):
        return self.script.pop(0) if self.script else False


class TestCorruptionAndLoss:
    def test_corrupt_item_is_miss_corrupt_and_never_served(self):
        store, _ = make_faulty_store(FaultConfig(corruption_rate=1.0))
        store.save(1, 10, now=0.0)
        assert store.get(1).corrupt
        result = store.lookup(1, 1.0)
        assert result.status is LookupStatus.MISS_CORRUPT
        assert not result.hit
        assert store.stats.corrupt_misses == 1
        assert 1 not in store  # dropped, not retried
        assert store.lookup(1, 2.0).status is LookupStatus.MISS

    def test_lost_item_is_plain_miss(self):
        store, _ = make_faulty_store(FaultConfig(loss_rate=1.0))
        store.save(1, 10, now=0.0)
        result = store.lookup(1, 1.0)
        assert result.status is LookupStatus.MISS
        assert store.stats.lost_items == 1
        assert 1 not in store

    def test_zero_rates_leave_items_clean(self):
        store, _ = make_faulty_store(FaultConfig(ssd_fault_rate=0.5))
        store.save(1, 10, now=0.0)
        item = store.get(1)
        assert not item.corrupt and not item.lost
        assert store.lookup(1, 1.0).hit


class TestSsdRetries:
    def test_transient_demotion_fault_is_retried(self):
        store, injector = make_faulty_store(
            FaultConfig(max_retries=3, ssd_fault_rate=0.5),
            dram_items=1,
            injector_cls=ScriptedInjector,
        )
        injector.script = [True, False]  # first attempt fails, retry succeeds
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)  # forces demotion of session 1 to disk
        assert store.get(1).tier is Tier.DISK
        assert store.stats.transfer_faults == 1
        assert store.stats.transfer_retries == 1
        assert store.stats.evicted_to_disk == 1
        assert store.stats.evicted_out == 0

    def test_retry_budget_exhaustion_degrades_to_drop(self):
        store, injector = make_faulty_store(
            FaultConfig(max_retries=1, ssd_fault_rate=0.5, breaker_threshold=50),
            dram_items=1,
            injector_cls=ScriptedInjector,
        )
        injector.script = [True, True]  # attempt + single retry both fail
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        assert 1 not in store  # victim dropped out instead of demoted
        assert store.get(2).tier is Tier.DRAM
        assert store.stats.evicted_out == 1
        assert store.stats.evicted_to_disk == 0
        assert store.stats.transfer_faults == 2
        assert store.stats.transfer_retries == 1

    def test_failed_retries_still_burn_ssd_link_time(self):
        store, injector = make_faulty_store(
            FaultConfig(max_retries=2, ssd_fault_rate=0.5),
            dram_items=1,
            injector_cls=ScriptedInjector,
        )
        injector.script = [True, False]
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        # Two attempts of 10 KB at 1 GB/s each occupy the link.
        assert store.ssd.busy_time == pytest.approx(2 * 10 * KB / 1e9)


class TestBreaker:
    def test_repeated_failures_trip_breaker_and_bypass_ssd(self):
        store, injector = make_faulty_store(
            FaultConfig(
                max_retries=0,
                ssd_fault_rate=0.5,
                breaker_threshold=2,
                breaker_cooldown=30.0,
            ),
            dram_items=1,
            injector_cls=ScriptedInjector,
        )
        injector.script = [True] * 10
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)  # failure 1: victim dropped
        store.save(3, 10, now=2.0)  # failure 2: trips the breaker
        assert store.stats.breaker_trips == 1
        assert not store.ssd_available(3.0)
        # With the breaker open, evictions bypass the SSD without burning
        # fault draws: DRAM-only operation.
        script_len = len(injector.script)
        store.save(4, 10, now=3.0)
        assert len(injector.script) == script_len  # no transfer attempted
        assert store.stats.evicted_out == 3
        assert store.stats.evicted_to_disk == 0

    def test_breaker_recovery_probe(self):
        store, injector = make_faulty_store(
            FaultConfig(
                max_retries=0,
                ssd_fault_rate=0.5,
                breaker_threshold=1,
                breaker_cooldown=10.0,
            ),
            dram_items=1,
            injector_cls=ScriptedInjector,
        )
        injector.script = [True]  # only the first transfer fails
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)  # trips immediately (threshold 1)
        assert store.stats.breaker_trips == 1
        assert not store.ssd_available(5.0)
        # Cooldown elapsed: the next demotion is a recovery probe and
        # succeeds, closing the breaker.
        store.save(3, 10, now=12.0)
        assert store.stats.breaker_recoveries == 1
        assert store.stats.evicted_to_disk == 1
        assert store.ssd_available(12.0)

    def test_open_breaker_disables_prefetch(self):
        store, injector = make_faulty_store(
            FaultConfig(
                max_retries=0,
                ssd_fault_rate=0.5,
                breaker_threshold=1,
                breaker_cooldown=1000.0,
            ),
            dram_items=2,
            injector_cls=ScriptedInjector,
        )
        # Get an item onto disk cleanly, then trip the breaker.
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.save(3, 10, now=2.0)  # demotes session 1 to disk (clean)
        assert store.get(1).tier is Tier.DISK
        injector.script = [True]
        store.save(4, 10, now=3.0)  # fault trips the breaker
        assert store.stats.breaker_trips == 1
        assert store.prefetch(ListQueueView([1]), now=4.0) == []
        assert store.get(1).tier is Tier.DISK


class TestTierLoss:
    def test_lose_dram_drops_only_dram_items(self):
        store, _ = make_faulty_store(FaultConfig(ssd_fault_rate=0.0), dram_items=2)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.save(3, 10, now=2.0)  # demotes 1 to disk
        assert store.get(1).tier is Tier.DISK
        lost = store.lose_tier(Tier.DRAM)
        assert lost == 2
        assert store.stats.lost_items == 2
        assert 2 not in store and 3 not in store
        assert store.get(1).tier is Tier.DISK  # disk survives a DRAM wipe
        store.check_invariants()

    def test_lose_disk(self):
        store, _ = make_faulty_store(FaultConfig(), dram_items=2)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        store.save(3, 10, now=2.0)
        assert store.lose_tier(Tier.DISK) == 1
        assert 1 not in store
        assert len(store) == 2
        store.check_invariants()
