"""Shared prefix blocks: content-addressed, refcounted, copy-on-write.

Covers the cross-session KV sharing lifecycle in AttentionStore
(DESIGN.md §15): register/lookup/acquire/release, pinning while
referenced, eviction once unreferenced, copy-on-write forks on
truncation, crash-offline behaviour, and byte conservation under random
mixed private/shared workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import StoreConfig
from repro.sim import Channel
from repro.store import (
    AttentionStore,
    ListQueueView,
    LookupStatus,
    Tier,
    shared_prefix_hash,
)

KB = 1000


def make_store(dram_items=4, disk_items=16, item_tokens=10, **config_overrides):
    item_bytes = item_tokens * KB
    config = StoreConfig(
        dram_bytes=dram_items * item_bytes,
        ssd_bytes=disk_items * item_bytes,
        block_bytes=KB,
        dram_buffer_fraction=0.0,
        **config_overrides,
    )
    return AttentionStore(config, KB, Channel("ssd", 1e9))


H1 = shared_prefix_hash(0, 10, "llama-13b")
H2 = shared_prefix_hash(1, 10, "llama-13b")


class TestContentHash:
    def test_deterministic_and_distinct(self):
        assert H1 == shared_prefix_hash(0, 10, "llama-13b")
        assert H1 != H2
        assert H1 != shared_prefix_hash(0, 11, "llama-13b")
        assert H1 != shared_prefix_hash(0, 10, "llama-65b")

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shared_prefix_hash(-1, 10, "m")
        with pytest.raises(ValueError):
            shared_prefix_hash(0, 0, "m")


class TestRegisterLookup:
    def test_register_then_hit(self):
        store = make_store()
        assert store.register_shared(H1, 10, now=0.0)
        result = store.lookup_shared(H1, 1.0)
        assert result is not None
        assert result.status is LookupStatus.HIT_DRAM
        assert result.n_tokens == 10
        assert store.has_shared(H1)
        assert store.shared_block_count == 1
        store.check_invariants()

    def test_register_is_idempotent(self):
        store = make_store()
        assert store.register_shared(H1, 10, now=0.0)
        assert store.register_shared(H1, 10, now=1.0)
        assert store.shared_block_count == 1
        assert store.stats.shared_registered == 1

    def test_miss_counts(self):
        store = make_store()
        assert store.lookup_shared(H1, 0.0) is None
        assert store.stats.shared_misses == 1

    def test_oversized_prefix_rejected(self):
        store = make_store(dram_items=1, item_tokens=10)
        assert not store.register_shared(H1, 11, now=0.0)
        assert store.stats.shared_register_failures == 1
        store.check_invariants()

    def test_block_competes_for_dram_capacity(self):
        store = make_store(dram_items=2, disk_items=8)
        store.save(1, 10, now=0.0)
        store.save(2, 10, now=1.0)
        assert store.register_shared(H1, 10, now=2.0)
        # Admitting the block demoted a private item (capacity is real).
        tiers = {sid: store.get(sid).tier for sid in (1, 2)}
        assert Tier.DISK in tiers.values()
        store.check_invariants()


class TestRefcounts:
    def test_acquire_release_cycle(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        assert store.acquire_shared(H1, 1)
        assert store.acquire_shared(H1, 2)
        assert store.shared_ref_of(1) == (H1, 10)
        assert store.acquire_shared(H1, 1)  # idempotent per pair
        assert store.stats.shared_acquires == 2
        assert store.release_shared(1)
        assert not store.release_shared(1)  # already released
        assert store.release_shared(2)
        assert store.shared_ref_of(2) is None
        store.check_invariants()

    def test_acquire_unknown_hash_fails(self):
        store = make_store()
        assert not store.acquire_shared(H1, 1)

    def test_switching_hashes_releases_previous(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.register_shared(H2, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.acquire_shared(H2, 1)
        assert store.shared_ref_of(1) == (H2, 10)
        # H1's refcount must have dropped back to zero: filling DRAM may
        # now demote it.
        assert store.stats.shared_releases == 1
        store.check_invariants()

    def test_dedup_bytes_counts_extra_references(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        assert store.shared_dedup_bytes == 0
        store.acquire_shared(H1, 1)
        assert store.shared_dedup_bytes == 0
        store.acquire_shared(H1, 2)
        store.acquire_shared(H1, 3)
        assert store.shared_dedup_bytes == 2 * store.item_bytes(10)


class TestEvictionInteraction:
    def test_block_survives_donor_eviction(self):
        """Dropping the donor's private item releases its reference but
        leaves the shared block resident for the other reader."""
        store = make_store()
        store.save(1, 10, now=0.0)
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.acquire_shared(H1, 2)
        store.drop(1)
        assert store.has_shared(H1)
        assert store.shared_ref_of(1) is None
        assert store.shared_ref_of(2) == (H1, 10)
        result = store.lookup_shared(H1, 1.0)
        assert result is not None and result.status is LookupStatus.HIT_DRAM
        store.check_invariants()

    def test_referenced_block_is_not_evictable(self):
        store = make_store(dram_items=2, disk_items=2)
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        # Saves that need the block's space must fail around it, never
        # demote or drop it.
        for sid in range(2, 8):
            store.save(sid, 10, now=float(sid))
        assert store.has_shared(H1)
        block_item = store.get(store._shared[H1].pseudo_id)
        assert block_item.tier is Tier.DRAM
        store.check_invariants()

    def test_unreferenced_block_becomes_ordinary_victim(self):
        store = make_store(dram_items=2, disk_items=8)
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.release_shared(1)
        for sid in range(2, 6):
            store.save(sid, 10, now=float(sid))
        pseudo_id = store._shared[H1].pseudo_id
        assert store.get(pseudo_id).tier is Tier.DISK
        # Still addressable: a disk hit, priced like any private item.
        result = store.lookup_shared(H1, 9.0)
        assert result is not None and result.status is LookupStatus.HIT_DISK
        store.check_invariants()

    def test_referenced_block_exempt_from_ttl(self):
        store = make_store(ttl_seconds=5.0)
        store.register_shared(H1, 10, now=0.0)
        store.register_shared(H2, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.sweep_expired(100.0)
        assert store.has_shared(H1)
        assert not store.has_shared(H2)
        store.check_invariants()

    def test_expired_unreferenced_block_dropped_on_lookup(self):
        store = make_store(ttl_seconds=5.0)
        store.register_shared(H1, 10, now=0.0)
        assert store.lookup_shared(H1, 100.0) is None
        assert not store.has_shared(H1)
        store.check_invariants()


class TestCopyOnWrite:
    def test_truncate_forks_kept_prefix_into_private_item(self):
        store = make_store(dram_items=4)
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        # Keep 15 of the 20 total tokens: 5 prefix tokens fork over.
        assert store.truncate(1, 15)
        assert store.get(1).n_tokens == 15
        assert store.stats.cow_forks == 1
        assert store.shared_ref_of(1) is None  # diverged for good
        assert store.has_shared(H1)  # readers unaffected
        store.check_invariants()

    def test_truncate_within_private_suffix_still_diverges(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        assert store.truncate(1, 6)
        assert store.get(1).n_tokens == 6
        assert store.stats.cow_forks == 0
        assert store.shared_ref_of(1) is None
        store.check_invariants()

    def test_fork_without_dram_space_drops_item(self):
        store = make_store(dram_items=2, disk_items=0)
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        # Growing 10 -> 20 tokens needs a second item's worth of blocks;
        # DRAM holds exactly the block + the item, so the fork must fail
        # cleanly: item dropped, reference released, block intact.
        assert not store.truncate(1, 20)
        assert store.get(1) is None
        assert store.shared_ref_of(1) is None
        assert store.has_shared(H1)
        store.check_invariants()

    def test_fork_under_concurrent_prefetch(self):
        """COW while the private item's disk->DRAM fetch is in flight."""
        store = make_store(dram_items=3, disk_items=8)
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        # Demote the private item to disk, then free the DRAM pressure so
        # both the fetch and the fork's grow have room.
        store.save(2, 10, now=1.0)
        store.save(3, 10, now=2.0)
        assert store.get(1).tier is Tier.DISK
        store.drop(2)
        store.drop(3)
        issued = store.prefetch(ListQueueView([1]), now=10.0)
        assert [sid for sid, _ in issued] == [1]
        # The writer diverges mid-fetch: the fork grows the item in place.
        assert store.truncate(1, 15)
        assert store.get(1).n_tokens == 15
        assert store.stats.cow_forks == 1
        store.check_invariants()
        store.complete_fetch(1)
        store.check_invariants()


class TestLifecycleInteraction:
    def test_drop_releases_reference(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.drop(1)
        assert store.shared_ref_of(1) is None
        store.check_invariants()

    def test_drop_of_pseudo_id_unregisters_block(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.drop(store._shared[H1].pseudo_id)
        assert not store.has_shared(H1)
        assert store.shared_ref_of(1) is None
        store.check_invariants()

    def test_extract_releases_reference_but_keeps_block(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        item = store.extract(1)
        assert item is not None
        assert store.shared_ref_of(1) is None
        assert store.has_shared(H1)
        store.check_invariants()

    def test_discard_stale_releases_itemless_reference(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        assert not store.discard_stale(1)  # no private item to drop
        assert store.shared_ref_of(1) is None
        store.check_invariants()

    def test_decommission_clears_all_sharing_state(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.acquire_shared(H1, 2)  # reference without a private item
        store.decommission()
        assert len(store) == 0
        assert store.shared_block_count == 0
        assert store.shared_ref_of(1) is None
        assert store.shared_ref_of(2) is None
        store.check_invariants()

    def test_admit_migrated_adopts_unknown_hash(self):
        store = make_store()
        item = _extract_from_donor()
        store.admit_migrated(
            1, item.n_tokens, 5.0, shared_hash=H1, shared_tokens=10
        )
        assert store.has_shared(H1)
        assert store.shared_ref_of(1) == (H1, 10)
        assert store.stats.shared_adoptions == 1
        store.check_invariants()

    def test_admit_migrated_relinks_known_hash(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        item = _extract_from_donor()
        store.admit_migrated(
            1, item.n_tokens, 5.0, shared_hash=H1, shared_tokens=10
        )
        assert store.shared_ref_of(1) == (H1, 10)
        assert store.stats.shared_adoptions == 0
        assert store.shared_block_count == 1
        store.check_invariants()


def _extract_from_donor():
    donor = make_store()
    donor.save(1, 10, now=0.0)
    item = donor.extract(1)
    assert item is not None
    return item


class TestOfflineWithSharing:
    def test_wipe_and_restore_recovers_disk_shared_block(self):
        """A shared block demoted to SSD survives the crash-offline
        round trip and is re-addressable by hash afterwards."""
        store = make_store(dram_items=2, disk_items=8)
        store.register_shared(H1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        store.release_shared(1)
        for sid in range(2, 6):  # push the unreferenced block to disk
            store.save(sid, 10, now=float(sid))
        pseudo_id = store._shared[H1].pseudo_id
        assert store.get(pseudo_id).tier is Tier.DISK
        store.wipe_volatile(10.0)
        assert not store.has_shared(H1)
        store.restore_offline(20.0)
        assert store.has_shared(H1)
        result = store.lookup_shared(H1, 21.0)
        assert result is not None and result.status is LookupStatus.HIT_DISK
        store.check_invariants()

    def test_wipe_loses_dram_only_block(self):
        store = make_store()
        store.register_shared(H1, 10, now=0.0)
        store.wipe_volatile(1.0)
        store.restore_offline(5.0)
        assert not store.has_shared(H1)
        store.check_invariants()

    def test_restored_private_item_relinks_to_restored_block(self):
        """A disk-resident private suffix whose shared block also
        survived on disk comes back still referencing it."""
        store = make_store(dram_items=2, disk_items=12)
        store.register_shared(H1, 10, now=0.0)
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        # Demote both the block and the suffix: release the pin, then
        # flood DRAM (the suffix's reference is *kept* — only the pin
        # tracks refcounts, and drops release refs — so re-acquire).
        store.release_shared(1)
        store.acquire_shared(H1, 1)
        for sid in range(2, 6):
            store.save(sid, 10, now=float(sid))
        # Block is pinned in DRAM while referenced; release so it spills.
        store.release_shared(1)
        store.acquire_shared(H1, 1)
        for sid in range(6, 10):
            store.save(sid, 10, now=float(sid))
        if store.get(store._shared[H1].pseudo_id).tier is not Tier.DISK:
            store.release_shared(1)
            for sid in range(10, 14):
                store.save(sid, 10, now=float(sid))
            store.acquire_shared(H1, 1)
        assert store.get(1).tier is Tier.DISK
        assert store.get(store._shared[H1].pseudo_id).tier is Tier.DISK
        store.wipe_volatile(20.0)
        store.restore_offline(30.0)
        assert store.has_shared(H1)
        assert store.shared_ref_of(1) == (H1, 10)
        store.check_invariants()

    def test_orphaned_suffix_discarded_when_block_lost(self):
        """A restored private suffix whose shared prefix block did not
        survive is useless (prefix-first readability) and is discarded."""
        store = make_store(dram_items=3, disk_items=8)
        store.register_shared(H1, 10, now=0.0)  # stays in DRAM: lost
        store.save(1, 10, now=0.0)
        store.acquire_shared(H1, 1)
        for sid in range(2, 6):  # demote the private suffix only
            store.save(sid, 10, now=float(sid))
        assert store.get(1).tier is Tier.DISK
        assert store.get(store._shared[H1].pseudo_id).tier is Tier.DRAM
        store.wipe_volatile(10.0)
        store.restore_offline(20.0)
        assert not store.has_shared(H1)
        assert store.get(1) is None
        assert store.stats.shared_orphan_discards == 1
        store.check_invariants()


shared_op = st.one_of(
    st.tuples(st.just("save"), st.integers(0, 9), st.integers(1, 12)),
    st.tuples(st.just("register"), st.integers(0, 2), st.integers(1, 10)),
    st.tuples(st.just("acquire"), st.integers(0, 9), st.integers(0, 2)),
    st.tuples(st.just("release"), st.integers(0, 9), st.just(0)),
    st.tuples(st.just("lookup_shared"), st.just(0), st.integers(0, 2)),
    st.tuples(st.just("truncate"), st.integers(0, 9), st.integers(0, 15)),
    st.tuples(st.just("drop"), st.integers(0, 9), st.just(0)),
    st.tuples(st.just("wipe_restore"), st.just(0), st.just(0)),
)


class TestSharingProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(shared_op, min_size=1, max_size=50))
    def test_random_shared_ops_conserve_bytes(self, ops):
        """Byte conservation with sharing: after every operation the
        store's own invariant sweep must hold — tier accounting matches
        allocators, every block has a resident pseudo item, refcounts
        equal live references, pins equal referenced blocks."""
        store = make_store(dram_items=3, disk_items=8)
        hashes = [H1, H2, shared_prefix_hash(2, 10, "llama-13b")]
        now = 0.0
        for op, sid, arg in ops:
            now += 1.0
            if op == "save":
                store.save(sid, arg, now=now)
            elif op == "register":
                store.register_shared(hashes[sid % 3], arg, now=now)
            elif op == "acquire":
                store.acquire_shared(hashes[arg], sid)
            elif op == "release":
                store.release_shared(sid)
            elif op == "lookup_shared":
                store.lookup_shared(hashes[arg], now)
            elif op == "truncate":
                store.truncate(sid, arg)
            elif op == "drop":
                store.drop(sid)
            elif op == "wipe_restore":
                store.wipe_volatile(now)
                store.check_invariants()
                store.restore_offline(now)
            store.check_invariants()
