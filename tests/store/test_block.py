"""Tests for the block-based storage allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.store import BlockAllocator, OutOfBlocksError


class TestBlockAllocator:
    def test_capacity_rounds_down_to_blocks(self):
        alloc = BlockAllocator(capacity_bytes=100, block_bytes=30)
        assert alloc.total_blocks == 3
        assert alloc.capacity_bytes == 90

    def test_blocks_needed_ceils(self):
        alloc = BlockAllocator(1000, 10)
        assert alloc.blocks_needed(0) == 0
        assert alloc.blocks_needed(1) == 1
        assert alloc.blocks_needed(10) == 1
        assert alloc.blocks_needed(11) == 2

    def test_allocate_and_free(self):
        alloc = BlockAllocator(100, 10)
        a = alloc.allocate(25)
        assert a.n_blocks == 3
        assert alloc.free_blocks == 7
        alloc.free(a)
        assert alloc.free_blocks == 10

    def test_internal_fragmentation(self):
        alloc = BlockAllocator(100, 10)
        a = alloc.allocate(25)
        assert a.internal_fragmentation == 5
        assert alloc.internal_fragmentation_bytes == 5
        alloc.free(a)
        assert alloc.internal_fragmentation_bytes == 0

    def test_out_of_blocks(self):
        alloc = BlockAllocator(30, 10)
        alloc.allocate(30)
        with pytest.raises(OutOfBlocksError):
            alloc.allocate(1)

    def test_double_free_rejected(self):
        alloc = BlockAllocator(100, 10)
        a = alloc.allocate(10)
        alloc.free(a)
        with pytest.raises(KeyError):
            alloc.free(a)

    def test_can_allocate(self):
        alloc = BlockAllocator(30, 10)
        assert alloc.can_allocate(30)
        assert not alloc.can_allocate(31)

    def test_resize_shrink(self):
        alloc = BlockAllocator(100, 10)
        a = alloc.allocate(50)
        b = alloc.resize(a, 20)
        assert b.n_blocks == 2
        assert alloc.free_blocks == 8

    def test_resize_grow_fails_restores_original(self):
        alloc = BlockAllocator(100, 10)
        a = alloc.allocate(60)
        alloc.allocate(40)
        with pytest.raises(OutOfBlocksError):
            alloc.resize(a, 70)
        # Original allocation must still be live.
        assert alloc.used_blocks == 10
        alloc.free(a)
        assert alloc.free_blocks == 6

    def test_zero_capacity(self):
        alloc = BlockAllocator(0, 10)
        assert not alloc.can_allocate(1)
        assert alloc.can_allocate(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockAllocator(-1, 10)
        with pytest.raises(ValueError):
            BlockAllocator(100, 0)
        with pytest.raises(ValueError):
            BlockAllocator(100, 10).blocks_needed(-5)

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=40)
    )
    def test_alloc_free_conservation(self, sizes):
        """Property: freeing everything restores the full pool."""
        alloc = BlockAllocator(10_000, 16)
        live = []
        for size in sizes:
            try:
                live.append(alloc.allocate(size))
            except OutOfBlocksError:
                if live:
                    alloc.free(live.pop())
        used = sum(a.n_blocks for a in live)
        assert alloc.used_blocks == used
        for a in live:
            alloc.free(a)
        assert alloc.free_blocks == alloc.total_blocks
        assert alloc.internal_fragmentation_bytes == 0

    @given(st.integers(min_value=0, max_value=10_000))
    def test_allocation_covers_request(self, size):
        alloc = BlockAllocator(100_000, 64)
        a = alloc.allocate(size)
        assert a.allocated_bytes >= size
        assert a.allocated_bytes - size < 64
