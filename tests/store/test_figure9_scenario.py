"""The paper's Figure 9 walkthrough as a test.

Section 3.3 illustrates scheduler-aware fetching and eviction with a
scenario: Job 1 is executing; Jobs 2-9 wait in the queue; host memory
holds a few KV caches and the disks are full.

* Fetching: with a look-ahead prefetch window of 2, the manager checks
  Jobs 2-3; Job 2's cache is already in memory, Job 3's is on disk, so
  Job 3 is prefetched from disks to memory.
* Eviction: to make room, the look-ahead eviction window (size 6 here) is
  consulted.  Every memory-resident cache has a queued job, so the one
  whose job is nearest the *tail* is evicted to disks (Job 4 in the
  figure's variant below).  The disks being full, the queued job furthest
  in the future (Job 9, the last arrival) loses its disk slot.
"""

import pytest

from repro.config import StoreConfig
from repro.sim import Channel
from repro.store import AttentionStore, ListQueueView, Tier

ITEM_TOKENS = 10
KB = 1000
ITEM_BYTES = ITEM_TOKENS * KB


def figure9_store(memory_slots=2, disk_slots=6):
    config = StoreConfig(
        dram_bytes=memory_slots * ITEM_BYTES,
        ssd_bytes=disk_slots * ITEM_BYTES,
        block_bytes=KB,
        dram_buffer_fraction=0.0,
        prefetch_capacity_fraction=1.0,
    )
    return AttentionStore(config, KB, Channel("ssd", 1e9))


class TestFigure9:
    def setup_store(self):
        """Memory holds Jobs 2 and 4's caches; disks hold 3, 5, ..., and
        are full."""
        store = figure9_store(memory_slots=2, disk_slots=6)
        # Fill the disks first (oldest saves spill as memory refills).
        for sid, t in ((3, 1.0), (5, 2.0), (6, 3.0), (7, 4.0), (8, 5.0), (9, 6.0)):
            store.save(sid, ITEM_TOKENS, now=t)
        # Most recent saves stay in memory.
        store.save(2, ITEM_TOKENS, now=7.0)
        store.save(4, ITEM_TOKENS, now=8.0)
        # Everything older was demoted to the (now full) disks.
        assert store.get(2).tier is Tier.DRAM
        assert store.get(4).tier is Tier.DRAM
        for sid in (3, 5, 6, 7, 8, 9):
            assert store.get(sid).tier is Tier.DISK, sid
        assert store.disk_tier.free_bytes == 0
        return store

    def test_fetching_pulls_job3_from_disk(self):
        store = self.setup_store()
        queue = ListQueueView([2, 3, 4, 5, 6, 7, 8, 9])
        issued = store.prefetch(queue, now=10.0)
        fetched = [sid for sid, _ in issued]
        # Job 2 is already in memory — only Job 3 needs fetching.
        assert 3 in fetched
        assert 2 not in fetched
        assert store.get(3).tier is Tier.DRAM

    def test_eviction_prefers_tail_of_window(self):
        store = self.setup_store()
        queue = ListQueueView([2, 3, 4, 5, 6, 7, 8, 9])
        store.prefetch(queue, now=10.0)
        # Making room for Job 3 evicted the memory-resident cache whose
        # queued job sits nearest the tail: Job 4 (position 2) stays only
        # if something further exists — here Jobs 2 and 4 are resident and
        # 4 is further from the head, so 4 was demoted to the disks.
        assert store.get(4).tier is Tier.DISK
        assert store.get(2).tier is Tier.DRAM

    def test_disk_eviction_drops_last_arrival(self):
        store = self.setup_store()
        queue = ListQueueView([2, 3, 4, 5, 6, 7, 8, 9])
        store.prefetch(queue, now=10.0)
        # The disks were full; demoting Job 4 pushed out the cache whose
        # job is furthest in the future — Job 9, exactly as in Figure 9
        # ("the KV cache for Job 4 is moved to the location previously
        # occupied by Job 9").
        assert 9 not in store
        assert store.get(4).tier is Tier.DISK
        for sid in (5, 6, 7, 8):
            assert store.get(sid).tier is Tier.DISK, sid

    def test_no_eviction_of_head_jobs(self):
        """Caches of jobs about to run are never the eviction choice."""
        store = self.setup_store()
        queue = ListQueueView([2, 4, 5, 6, 7, 8, 9])
        # Saving one more item must not displace Job 2 (queue head).
        store.save(10, ITEM_TOKENS, now=11.0, queue=queue)
        assert store.get(2).tier is Tier.DRAM
