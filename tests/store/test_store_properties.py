"""Property-based tests of AttentionStore invariants.

A randomly generated sequence of store operations must never violate the
core accounting invariants: every item is resident in exactly the tier its
metadata claims, tier byte accounting matches the block allocators, and
capacities are never exceeded.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EvictionPolicyName, StoreConfig
from repro.store import AttentionStore, ListQueueView, Tier

KB = 1000


def make_store(policy=EvictionPolicyName.SCHEDULER_AWARE, dram_items=3, disk_items=8):
    config = StoreConfig(
        dram_bytes=dram_items * 10 * KB,
        ssd_bytes=disk_items * 10 * KB,
        block_bytes=KB,
        policy=policy,
        dram_buffer_fraction=0.0,
    )
    return AttentionStore(config, kv_bytes_per_token=KB)


def check_invariants(store: AttentionStore) -> None:
    # 1. Item registry matches tier residency exactly.
    resident = set()
    for tier in (store.hbm_tier, store.dram_tier, store.disk_tier):
        for item in tier.iter_fifo():
            assert item.tier is tier.tier
            assert item.session_id not in resident
            resident.add(item.session_id)
    assert resident == {i.session_id for i in map(store.get, resident)}
    assert len(store) == len(resident)
    # 2. Capacity respected.
    for tier in (store.hbm_tier, store.dram_tier, store.disk_tier):
        assert 0 <= tier.used_bytes <= tier.capacity_bytes
    # 3. Total byte accounting.
    expected = sum(
        item.n_bytes
        for tier in (store.hbm_tier, store.dram_tier, store.disk_tier)
        for item in tier.iter_fifo()
    )
    assert store.total_item_bytes == expected


operation = st.one_of(
    st.tuples(st.just("save"), st.integers(0, 15), st.integers(1, 12)),
    st.tuples(st.just("lookup"), st.integers(0, 15), st.just(0)),
    st.tuples(st.just("drop"), st.integers(0, 15), st.just(0)),
    st.tuples(st.just("truncate"), st.integers(0, 15), st.integers(0, 12)),
    st.tuples(st.just("invalidate"), st.integers(0, 15), st.just(0)),
    st.tuples(st.just("prefetch"), st.integers(0, 15), st.just(0)),
    st.tuples(st.just("sweep"), st.just(0), st.just(0)),
)


class TestStoreInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(operation, min_size=1, max_size=60),
        st.sampled_from(list(EvictionPolicyName)),
    )
    def test_random_operations_preserve_invariants(self, ops, policy):
        store = make_store(policy=policy)
        now = 0.0
        for op, sid, arg in ops:
            now += 1.0
            if op == "save":
                store.save(sid, arg, now=now)
            elif op == "lookup":
                store.lookup(sid, now)
            elif op == "drop":
                store.drop(sid)
            elif op == "truncate":
                store.truncate(sid, arg)
            elif op == "invalidate":
                store.invalidate(sid)
            elif op == "prefetch":
                issued = store.prefetch(ListQueueView([sid]), now)
                for fetched_sid, _ in issued:
                    store.complete_fetch(fetched_sid)
            elif op == "sweep":
                store.sweep_expired(now)
            check_invariants(store)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=80))
    def test_saves_never_exceed_capacity(self, sids):
        store = make_store(dram_items=2, disk_items=4)
        for i, sid in enumerate(sids):
            store.save(sid, 8, now=float(i))
            check_invariants(store)
        # The store holds at most what fits.
        assert store.dram_tier.used_bytes <= store.dram_tier.capacity_bytes
        assert store.disk_tier.used_bytes <= store.disk_tier.capacity_bytes

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 8), min_size=2, max_size=30),
        st.integers(1, 10),
    )
    def test_queue_protection_is_consistent(self, sids, queued):
        """A queued session's item survives saves while any un-queued
        eviction candidate exists."""
        store = make_store(dram_items=2, disk_items=20)
        queue = ListQueueView([queued])
        store.save(queued, 10, now=0.0, queue=queue)
        for i, sid in enumerate(sids):
            if sid == queued:
                continue
            store.save(sid, 10, now=float(i + 1), queue=queue)
            check_invariants(store)
        # The queued item must still exist somewhere (never evicted out
        # while un-queued items were available).
        assert queued in store
