"""Tests for the deterministic parallel sweep runner.

Workers live at module level: the spawn start method pickles them by
reference, so closures and lambdas cannot cross the process boundary.
"""

import os

import pytest

from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.runner import (
    PointResult,
    SweepError,
    SweepPoint,
    in_sweep_worker,
    run_sweep,
    seed_for,
    unwrap,
)
from repro.workload import WorkloadSpec, generate_trace


def echo_worker(point, seed):
    return (point.key, point.params, seed, in_sweep_worker())


def failing_worker(point, seed):
    if point.params == "boom":
        raise RuntimeError(f"exploded on {point.key}")
    return point.key


def crashing_worker(point, seed):
    if point.params == "die":
        os._exit(13)  # simulate an OOM-killed / segfaulted worker
    return point.key


def serving_worker(point, seed):
    """One tiny end-to-end serving run (the determinism payload)."""
    model = get_model("llama-13b")
    engine = ServingEngine(
        model,
        hardware=HardwareConfig().for_model(model),
        engine_config=EngineConfig(batch_size=model.default_batch_size),
        store_config=StoreConfig(),
        warmup_turns=10,
    )
    trace = generate_trace(WorkloadSpec(n_sessions=point.params, seed=7))
    result = engine.run(trace)
    return (result.summary, result.store_stats, result.events_processed)


class TestSeedFor:
    def test_deterministic(self):
        assert seed_for(42, "a") == seed_for(42, "a")

    def test_distinct_points_distinct_seeds(self):
        seeds = {seed_for(0, f"point-{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_base_seeds_distinct_streams(self):
        assert seed_for(0, "a") != seed_for(1, "a")

    def test_range(self):
        for i in range(20):
            assert 0 <= seed_for(i, str(i)) < 2**63


class TestRunSweepInline:
    def test_results_in_point_order(self):
        points = [SweepPoint(f"p{i}", i) for i in range(5)]
        results = run_sweep(echo_worker, points, jobs=1)
        assert [r.key for r in results] == [p.key for p in points]
        assert all(r.ok for r in results)

    def test_worker_receives_derived_seed(self):
        [result] = run_sweep(echo_worker, [SweepPoint("k", None)], base_seed=9)
        _, _, seed, in_worker = result.value
        assert seed == seed_for(9, "k")
        assert not in_worker  # inline execution stays in this process

    def test_exception_contained_per_point(self):
        points = [SweepPoint("ok1", 1), SweepPoint("bad", "boom"), SweepPoint("ok2", 2)]
        results = run_sweep(failing_worker, points, jobs=1)
        assert [r.ok for r in results] == [True, False, True]
        assert "exploded on bad" in results[1].error
        assert results[0].value == "ok1" and results[2].value == "ok2"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(echo_worker, [SweepPoint("a"), SweepPoint("a")])

    def test_unwrap_raises_with_all_failures_named(self):
        results = [
            PointResult("good", value=1),
            PointResult("bad1", error="Traceback ...\nRuntimeError: x"),
            PointResult("bad2", error="Traceback ...\nRuntimeError: y"),
        ]
        with pytest.raises(SweepError, match="bad1") as exc_info:
            unwrap(results)
        assert "bad2" in str(exc_info.value)
        assert unwrap(results[:1]) == {"good": 1}


class TestRunSweepParallel:
    def test_results_ordered_and_seeded_like_inline(self):
        points = [SweepPoint(f"p{i}", i) for i in range(4)]
        inline = run_sweep(echo_worker, points, jobs=1, base_seed=3)
        parallel = run_sweep(echo_worker, points, jobs=2, base_seed=3)
        assert [r.key for r in parallel] == [r.key for r in inline]
        for par, ser in zip(parallel, inline):
            # Same params, same derived seed; only the worker flag differs.
            assert par.value[:3] == ser.value[:3]
            assert par.value[3]  # ran inside a sweep worker process

    def test_worker_exception_contained(self):
        points = [SweepPoint("ok", 1), SweepPoint("bad", "boom")]
        results = run_sweep(failing_worker, points, jobs=2)
        assert results[0].ok and results[0].value == "ok"
        assert not results[1].ok and "exploded on bad" in results[1].error

    def test_worker_process_death_surfaces_as_error(self):
        """A dying worker must become a per-point error, not a hang."""
        points = [SweepPoint("dies", "die"), SweepPoint("fine", 1)]
        results = run_sweep(crashing_worker, points, jobs=2)
        assert [r.key for r in results] == ["dies", "fine"]
        dead = results[0]
        assert not dead.ok and "crashed" in dead.error


class TestSweepDeterminism:
    def test_serving_runs_bit_identical_across_job_counts(self):
        """jobs=1 (inline) vs jobs=4 (process pool): identical RunSummary,
        store stats and event counts for every point."""
        points = [SweepPoint(f"sessions={n}", n) for n in (12, 16, 20)]
        inline = unwrap(run_sweep(serving_worker, points, jobs=1))
        parallel = unwrap(run_sweep(serving_worker, points, jobs=4))
        assert inline.keys() == parallel.keys()
        for key in inline:
            summary_1, stats_1, events_1 = inline[key]
            summary_4, stats_4, events_4 = parallel[key]
            assert summary_1 == summary_4, key
            assert stats_1 == stats_4, key
            assert events_1 == events_4, key
