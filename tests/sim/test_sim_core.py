"""Tests for the discrete-event simulation substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Channel, ChannelPair, EventQueue, SimClock, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_rejects_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(5.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        while q:
            event = q.pop()
            event.callback()
        assert fired == ["a", "b"]

    def test_ties_broken_by_insertion(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append(1))
        q.push(1.0, lambda: fired.append(2))
        q.pop().callback()
        q.pop().callback()
        assert fired == [1, 2]

    def test_cancellation(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.pop() is None
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(times)


class TestEventQueueLiveCounter:
    """``__len__``/``__bool__`` come from a live-event counter maintained
    on push/pop/cancel; these interleavings pin down the bookkeeping that
    lazy deletion makes easy to get wrong (cancelled events linger in the
    heap, and ``peek_time`` discards them as a side effect)."""

    def test_cancel_then_peek_then_len(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert len(q) == 1
        # peek_time pops the cancelled heap top; the counter already
        # accounted for it at cancel time and must not move again.
        assert q.peek_time() == 2.0
        assert len(q) == 1
        assert bool(q)

    def test_peek_then_cancel_then_len(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 1.0
        first.cancel()
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_double_cancel_decrements_once(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_underflow(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is event
        # The event left the queue when popped; a late cancel is a no-op
        # on the counter.
        event.cancel()
        assert len(q) == 1
        assert q.pop() is not None
        assert len(q) == 0
        assert not q

    def test_cancel_all_then_peek_empties(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(5)]
        for event in events:
            event.cancel()
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None
        assert q.pop() is None
        assert len(q) == 0

    def test_interleaved_cancel_peek_pop_matches_count(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(10)]
        for event in events[::2]:
            event.cancel()
        assert len(q) == 5
        assert q.peek_time() == 1.0
        assert len(q) == 5
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == [1.0, 3.0, 5.0, 7.0, 9.0]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop", "peek", "cancel"]),
                st.floats(min_value=0, max_value=100),
            ),
            max_size=80,
        )
    )
    def test_len_matches_reference_model(self, ops):
        """Counter-based len always equals the number of live events."""
        q = EventQueue()
        live: list = []  # reference: events pushed, not popped/cancelled
        pushed: list = []
        for op, t in ops:
            if op == "push":
                pushed.append(q.push(t, lambda: None))
                live.append(pushed[-1])
            elif op == "pop":
                was_empty = not live
                event = q.pop()
                assert (event is None) == was_empty
                if event is not None:
                    assert event is min(live, key=lambda e: (e.time, e.seq))
                    live.remove(event)
            elif op == "peek":
                time = q.peek_time()
                if live:
                    assert time == min(e.time for e in live)
                else:
                    assert time is None
            elif op == "cancel" and pushed:
                victim = pushed[int(t) % len(pushed)]
                victim.cancel()
                if victim in live:
                    live.remove(victim)
            assert len(q) == len(live)
            assert bool(q) == bool(live)


class TestSimulator:
    def test_runs_in_order(self):
        sim = Simulator()
        seen = []
        sim.at(3.0, lambda: seen.append(3))
        sim.at(1.0, lambda: seen.append(1))
        sim.run()
        assert seen == [1, 3]
        assert sim.now == 3.0

    def test_after_is_relative(self):
        sim = Simulator(start=10.0)
        times = []
        sim.after(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [15.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.after(2.0, lambda: seen.append(("inner", sim.now)))

        sim.at(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_run_until_stops(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(1))
        sim.at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_rejects_past_scheduling(self):
        sim = Simulator(start=5.0)
        with pytest.raises(ValueError, match="past"):
            sim.at(1.0, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.after(0.0, loop)

        sim.at(0.0, loop)
        with pytest.raises(RuntimeError, match="events"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestChannel:
    def test_duration(self):
        ch = Channel("x", bandwidth=100.0)
        assert ch.duration(50) == pytest.approx(0.5)

    def test_transfer_when_idle(self):
        ch = Channel("x", bandwidth=100.0)
        assert ch.transfer(0.0, 100) == pytest.approx(1.0)

    def test_transfers_queue_fifo(self):
        ch = Channel("x", bandwidth=100.0)
        ch.transfer(0.0, 100)
        assert ch.transfer(0.0, 100) == pytest.approx(2.0)

    def test_idle_gap_resets_queue(self):
        ch = Channel("x", bandwidth=100.0)
        ch.transfer(0.0, 100)
        assert ch.transfer(10.0, 100) == pytest.approx(11.0)

    def test_accounting(self):
        ch = Channel("x", bandwidth=100.0)
        ch.transfer(0.0, 100)
        ch.transfer(0.0, 300)
        assert ch.bytes_moved == 400
        assert ch.busy_time == pytest.approx(4.0)

    def test_utilisation(self):
        ch = Channel("x", bandwidth=100.0)
        ch.transfer(0.0, 100)
        assert ch.utilisation(2.0) == pytest.approx(0.5)
        assert ch.utilisation(0.0) == 0.0

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Channel("x", bandwidth=0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            Channel("x", bandwidth=1.0).duration(-1)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10**6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_completions_monotone_for_sorted_issues(self, requests):
        """FIFO property: issuing in time order completes in time order."""
        ch = Channel("x", bandwidth=1e3)
        completions = [
            ch.transfer(now, n) for now, n in sorted(requests, key=lambda r: r[0])
        ]
        assert completions == sorted(completions)

    @given(
        st.floats(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_transfer_never_faster_than_bandwidth(self, now, n_bytes):
        ch = Channel("x", bandwidth=1e3)
        done = ch.transfer(now, n_bytes)
        assert done >= now + n_bytes / 1e3 - 1e-9


class TestChannelPair:
    def test_slower_first_hop_dominates(self):
        slow = Channel("ssd", bandwidth=100.0)
        fast = Channel("pcie", bandwidth=1000.0)
        done = ChannelPair(slow, fast).transfer(0.0, 1000)
        # Streaming: the 10s first hop dominates; the second hop drains
        # concurrently as bytes arrive.
        assert done == pytest.approx(10.0)

    def test_slower_second_hop_dominates(self):
        fast = Channel("ssd", bandwidth=1000.0)
        slow = Channel("pcie", bandwidth=100.0)
        done = ChannelPair(fast, slow).transfer(0.0, 1000)
        assert done == pytest.approx(10.0)

    def test_second_hop_queueing_respected(self):
        first = Channel("ssd", bandwidth=1000.0)
        second = Channel("pcie", bandwidth=1000.0)
        second.transfer(0.0, 5000)  # second hop busy until t=5
        done = ChannelPair(first, second).transfer(0.0, 1000)
        assert done == pytest.approx(6.0)

    def test_both_channels_occupied(self):
        slow = Channel("ssd", bandwidth=100.0)
        fast = Channel("pcie", bandwidth=1000.0)
        ChannelPair(slow, fast).transfer(0.0, 1000)
        assert slow.bytes_moved == 1000
        assert fast.bytes_moved == 1000
