"""Differential and regression tests for the fast simulation core.

The calendar-queue :class:`EventQueue` and the batched dispatch loop in
``Simulator.run`` must be *bit-identical* in observable behaviour to the
original binary heap and one-event-at-a-time loop, which are kept as
:class:`LegacyEventQueue` / ``Simulator(legacy_core=True)`` precisely to
serve as the oracle here.  Three layers of checking:

* property tests drive both queues through the same random operation
  sequences and compare pop order and ``__len__`` after every step;
* loop-level tests pin the batched dispatcher's contract (clock advances
  once per unique timestamp, exceptions leave the queue as the legacy
  loop would, ``max_events`` counts identically);
* a full engine replay runs once on each core from the same seed and
  compares the complete ``RunResult`` plus the golden span trace.

A separate regression class checks that lazy deletion cannot bloat the
queue: cancel-heavy workloads must keep ``physical_size()`` bounded by
the compaction sweep.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine
from repro.models import MiB, get_model
from repro.obs import SpanTracer
from repro.sim import EventQueue, LegacyEventQueue, Simulator
from repro.workload import WorkloadSpec, generate_trace

# Operation tapes for the differential property tests.  Times come from
# a coarse grid so that equal timestamps (the interesting ordering case)
# are common; "cancel" picks a victim by index so cancels hit pushed,
# popped and already-cancelled events alike.
_op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push", "pop", "peek", "cancel"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=150,
)


def _apply(op, arg, queue, pushed):
    """Run one tape step against ``queue``; returns the popped event."""
    if op == "push":
        pushed.append(queue.push(arg / 4.0, lambda: None))
    elif op == "pop":
        return queue.pop()
    elif op == "peek":
        return queue.peek_time()
    elif pushed:  # cancel
        pushed[arg % len(pushed)].cancel()
    return None


class TestDifferentialOracle:
    """EventQueue vs LegacyEventQueue on identical operation tapes."""

    @settings(max_examples=200, deadline=None)
    @given(ops=_op_strategy)
    def test_pop_order_and_len_match_legacy(self, ops):
        new_q, old_q = EventQueue(), LegacyEventQueue()
        new_pushed, old_pushed = [], []
        for op, arg in ops:
            a = _apply(op, arg, new_q, new_pushed)
            b = _apply(op, arg, old_q, old_pushed)
            if op == "pop":
                if b is None:
                    assert a is None
                else:
                    assert (a.time, a.seq) == (b.time, b.seq)
            elif op == "peek":
                assert a == b
            # Live count agrees after *every* operation, not just pops.
            assert len(new_q) == len(old_q)
            assert bool(new_q) == bool(old_q)
        while old_q:
            a, b = new_q.pop(), old_q.pop()
            assert (a.time, a.seq) == (b.time, b.seq)
        assert new_q.pop() is None

    @settings(max_examples=100, deadline=None)
    @given(ops=_op_strategy)
    def test_collect_batch_drains_in_legacy_pop_order(self, ops):
        """Batched draining yields the exact legacy pop sequence."""
        new_q, old_q = EventQueue(), LegacyEventQueue()
        new_pushed, old_pushed = [], []
        for op, arg in ops:
            if op in ("pop", "peek"):
                continue  # build-up tape only; the drain is the test
            _apply(op, arg, new_q, new_pushed)
            _apply(op, arg, old_q, old_pushed)
        batched = []
        while True:
            buf = []
            t0 = new_q.collect_batch(buf)
            if t0 is None:
                break
            for event in buf:
                assert event.time == t0
                batched.append((event.time, event.seq))
            # Within a batch, events come out in scheduling order.
            seqs = [event.seq for event in buf]
            assert seqs == sorted(seqs)
        legacy = []
        while old_q:
            event = old_q.pop()
            legacy.append((event.time, event.seq))
        assert batched == legacy

    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1e7), min_size=1, max_size=200
        )
    )
    def test_wide_time_ranges_pop_sorted(self, times):
        """Window refills across huge spans preserve the total order."""
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(times)


class TestBatchedDispatchLoop:
    def test_advance_to_called_once_per_unique_timestamp(self):
        """The clock moves once per timestamp batch, not once per event."""
        sim = Simulator()

        class CountingClock:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            @property
            def _now(self):
                return self._inner._now

            @property
            def now(self):
                return self._inner.now

            def advance_to(self, time):
                self.calls += 1
                self._inner.advance_to(time)

        fired = []
        for t in (0.0, 0.0, 1.0, 1.0, 1.0, 2.0):
            sim.at(t, lambda t=t: fired.append(t))
        counting = CountingClock(sim.clock)
        sim.clock = counting
        sim.run()
        assert fired == [0.0, 0.0, 1.0, 1.0, 1.0, 2.0]
        # t=0.0 needs no advance (the clock starts there); 1.0 and 2.0
        # take one call each regardless of batch width.
        assert counting.calls == 2

    def test_exception_requeues_undispatched_tail_only(self):
        """A raising callback aborts the run exactly like the legacy
        loop: the raising event is consumed, later same-time events stay
        queued and the run can resume."""
        for legacy in (False, True):
            sim = Simulator(legacy_core=legacy)
            seen = []

            def boom():
                seen.append("boom")
                raise RuntimeError("kaboom")

            sim.at(1.0, lambda: seen.append("a"))
            sim.at(1.0, boom)
            sim.at(1.0, lambda: seen.append("b"))
            with pytest.raises(RuntimeError, match="kaboom"):
                sim.run()
            assert seen == ["a", "boom"], f"legacy={legacy}"
            assert len(sim._queue) == 1
            assert sim.events_processed == 1
            sim.run()
            assert seen == ["a", "boom", "b"]
            assert sim.events_processed == 2

    def test_max_events_counts_like_legacy_mid_batch(self):
        """``max_events`` may split a timestamp batch; the guard fires at
        exactly the same event count as the legacy loop."""
        for legacy in (False, True):
            sim = Simulator(legacy_core=legacy)
            fired = []
            for i in range(5):
                sim.at(1.0, lambda i=i: fired.append(i))
            with pytest.raises(RuntimeError, match="exceeded 3 events"):
                sim.run(max_events=3)
            assert fired == [0, 1, 2], f"legacy={legacy}"
            assert sim.events_processed == 3
            sim.run()
            assert fired == [0, 1, 2, 3, 4]

    def test_cancel_within_batch_skips_event(self):
        """An event cancelled by an earlier same-timestamp event must not
        fire, matching the legacy pop-time check."""
        for legacy in (False, True):
            # The canceller is scheduled first, so it dispatches first
            # and the victim — already inside the same collected batch
            # on the new core — must be skipped.
            sim = Simulator(legacy_core=legacy)
            fired = []
            victim_box = []
            sim.at(1.0, lambda: victim_box[0].cancel())
            victim_box.append(sim.at(1.0, lambda: fired.append("victim")))
            # And a cancellation from a strictly earlier timestamp.
            second = []
            sim2 = Simulator(legacy_core=legacy)
            sim2.at(1.0, lambda: second.append("first"))
            victim2 = sim2.at(1.0, lambda: second.append("victim"))
            sim2.at(0.5, victim2.cancel)
            sim.run()
            sim2.run()
            assert fired == [], f"legacy={legacy}"
            assert second == ["first"], f"legacy={legacy}"

    def test_run_until_with_empty_queue_advances_clock(self):
        for legacy in (False, True):
            sim = Simulator(legacy_core=legacy)
            sim.run(until=7.5)
            assert sim.now == 7.5


class TestLazyDeletionStaysBounded:
    def test_cancel_heavy_physical_size_bounded(self):
        """Compaction keeps lazy-deletion debt proportional to the live
        set: 20k pushes with 99.75% cancelled must not leave thousands
        of corpses in the structure."""
        q = EventQueue()
        for r in range(50):
            events = [
                q.push(1000.0 + r + i * 1e-4, lambda: None) for i in range(400)
            ]
            for event in events[1:]:
                event.cancel()
        assert len(q) == 50
        # Stale entries can linger only while they are outnumbered by
        # live ones or below the sweep threshold.
        assert q.physical_size() <= len(q) + 256
        # The survivors still drain in order.
        popped = [q.pop().time for _ in range(len(q))]
        assert popped == sorted(popped)
        assert q.pop() is None
        assert q.physical_size() == 0

    def test_cancel_all_during_drain_is_clean(self):
        q = EventQueue()
        events = [q.push(float(i % 7), lambda: None) for i in range(3000)]
        for event in events:
            event.cancel()
        assert len(q) == 0
        assert q.peek_time() is None
        assert q.physical_size() == 0

    def test_legacy_peek_discards_cancelled_top(self):
        """The oracle's lazy deletion: peek_time sheds cancelled heap
        tops so repeated peeks cannot rescan them."""
        q = LegacyEventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(100)]
        keeper = q.push(200.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert q.peek_time() == 200.0
        assert q.physical_size() == 1
        assert q.pop() is keeper


class TestFullReplayBitIdentity:
    """Same seed, both cores: identical results and golden trace."""

    def _run(self, legacy_core):
        trace = generate_trace(WorkloadSpec(n_sessions=50, seed=17))
        sim = Simulator(legacy_core=legacy_core)
        engine = ServingEngine(
            get_model("llama-13b"),
            engine_config=EngineConfig(batch_size=8),
            # Tight DRAM so the replay exercises spill, prefetch and
            # eviction — the paths with the most event traffic.
            store_config=StoreConfig(dram_bytes=int(300 * MiB)),
            sim=sim,
        )
        tracer = SpanTracer()
        tracer.attach_engine(engine)
        result = engine.run(trace)
        return result, tracer, sim

    def test_old_vs_new_core_bit_identical(self):
        new_result, new_tracer, new_sim = self._run(False)
        old_result, old_tracer, old_sim = self._run(True)
        assert new_result == old_result
        assert new_sim.events_processed == old_sim.events_processed
        assert new_sim.now == old_sim.now
        # The golden trace: every span, counter sample and async span,
        # value-for-value (frozen dataclasses compare by field).
        assert new_tracer.spans == old_tracer.spans
        assert new_tracer.counters == old_tracer.counters
        assert new_tracer.async_spans == old_tracer.async_spans
