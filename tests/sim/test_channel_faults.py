"""Channel-level fault injection: FaultyTransfer and degradation windows."""

import pytest

from repro.faults import DegradedWindow, FaultConfig, FaultInjector
from repro.sim import Channel, ChannelPair, FaultyTransfer


class ScriptedHook:
    """A fault hook whose failure decisions follow a fixed script."""

    def __init__(self, failures, factor=1.0):
        self._failures = list(failures)
        self._factor = factor

    def transfer_fails(self, channel, now):
        return self._failures.pop(0) if self._failures else False

    def bandwidth_factor(self, channel, now):
        return self._factor


class TestChannelFaults:
    def test_no_hook_unchanged(self):
        channel = Channel("ssd", bandwidth=1e9)
        assert channel.transfer(0.0, 10**9) == pytest.approx(1.0)
        assert channel.bytes_moved == 10**9

    def test_faulty_transfer_burns_time_but_moves_no_bytes(self):
        channel = Channel("ssd", bandwidth=1e9, fault_hook=ScriptedHook([True]))
        with pytest.raises(FaultyTransfer) as excinfo:
            channel.transfer(0.0, 10**9)
        assert excinfo.value.channel == "ssd"
        assert excinfo.value.busy_until == pytest.approx(1.0)
        assert channel.busy_until == pytest.approx(1.0)
        assert channel.bytes_moved == 0
        assert channel.busy_time == pytest.approx(1.0)
        # The next (clean) transfer queues behind the failed attempt.
        assert channel.transfer(0.0, 10**9) == pytest.approx(2.0)
        assert channel.bytes_moved == 10**9

    def test_degradation_scales_duration(self):
        channel = Channel("ssd", bandwidth=1e9, fault_hook=ScriptedHook([], factor=0.2))
        assert channel.transfer(0.0, 10**9) == pytest.approx(5.0)

    def test_degradation_window_via_injector(self):
        config = FaultConfig(
            degraded_windows=(
                DegradedWindow(start=10.0, duration=10.0, factor=0.5, channel="ssd"),
            )
        )
        channel = Channel("ssd", bandwidth=1e9, fault_hook=FaultInjector(config))
        assert channel.transfer(0.0, 10**9) == pytest.approx(1.0)  # before window
        assert channel.transfer(12.0, 10**9) == pytest.approx(14.0)  # inside: 2x
        assert channel.transfer(30.0, 10**9) == pytest.approx(31.0)  # after

    def test_channel_pair_propagates_first_hop_fault(self):
        ssd = Channel("ssd", bandwidth=1e9, fault_hook=ScriptedHook([True]))
        pcie = Channel("pcie-h2d", bandwidth=2e9)
        pair = ChannelPair(ssd, pcie)
        with pytest.raises(FaultyTransfer):
            pair.transfer(0.0, 10**9)
        # The second hop was never engaged.
        assert pcie.busy_time == 0.0
        assert pcie.bytes_moved == 0
