"""Tests for the LongEval-style retrieval benchmarks."""

import numpy as np
import pytest

from repro.model import (
    ModelConfig,
    Scheme,
    TinyTransformer,
    VOCAB_SIZE,
    decode,
    make_recall_case,
    run_retrieval_benchmark,
    run_word_recall_benchmark,
)
from repro.model.longeval import RetrievalBenchResult


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=32, n_layers=2, n_heads=2, d_ff=64,
        context_window=64,
    )
    return TinyTransformer(cfg, seed=2)


class TestMakeRecallCase:
    def test_overflows_window(self):
        rng = np.random.default_rng(0)
        case = make_recall_case(window=64, rng=rng)
        assert case.tokens.shape[0] > 2 * 64

    def test_answer_positions_are_word_continuations(self):
        rng = np.random.default_rng(1)
        case = make_recall_case(window=64, rng=rng)
        text = decode(case.tokens)
        for pos in case.answer_positions:
            # A continuation character: preceded by a letter of the word.
            assert text[pos].isalpha()
            assert text[pos - 1].isalpha()

    def test_probe_words_seen_earlier(self):
        rng = np.random.default_rng(2)
        case = make_recall_case(window=64, rng=rng, probe_sentences=1)
        text = decode(case.tokens)
        # Extract probe words from the answer positions' spans.
        probe_region_start = int(case.answer_positions[0]) - 1
        body = text[:probe_region_start]
        probe = text[probe_region_start:]
        for word in probe.replace(".", " ").split():
            assert word in body

    def test_positions_strictly_increasing(self):
        rng = np.random.default_rng(3)
        case = make_recall_case(window=64, rng=rng)
        diffs = np.diff(case.answer_positions)
        assert np.all(diffs > 0)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            make_recall_case(window=0, rng=np.random.default_rng(0))


class TestWordRecallBenchmark:
    def test_runs_all_schemes(self, model):
        for scheme in Scheme:
            result = run_word_recall_benchmark(
                model, scheme, n_cases=2, window=64
            )
            assert isinstance(result, RetrievalBenchResult)
            assert result.n_queries > 0
            assert 0 <= result.accuracy <= 1

    def test_deterministic_for_seed(self, model):
        a = run_word_recall_benchmark(model, Scheme.CA, n_cases=2, seed=7)
        b = run_word_recall_benchmark(model, Scheme.CA, n_cases=2, seed=7)
        assert a.n_correct == b.n_correct
        assert a.n_queries == b.n_queries


class TestKVRetrievalBenchmark:
    def test_runs(self, model):
        result = run_retrieval_benchmark(
            model, Scheme.TT, n_cases=2, n_pairs=20, window=48
        )
        assert result.n_queries == 2 * 3
        assert 0 <= result.accuracy <= 1

    def test_accuracy_zero_division_guard(self):
        r = RetrievalBenchResult(Scheme.CA, 0, 0)
        assert r.accuracy == 0.0
