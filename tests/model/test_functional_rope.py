"""Tests for numeric primitives and RoPE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.functional import (
    cross_entropy,
    gelu,
    gelu_backward,
    rmsnorm,
    rmsnorm_backward,
    softmax,
    softmax_backward,
    token_nll,
)
from repro.model.rope import apply_rope, rope_angles, unapply_rope

finite_floats = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).standard_normal((3, 5))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_stable_for_large_inputs(self):
        out = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(out))

    def test_invariant_to_shift(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    @given(arrays(np.float64, (4, 6), elements=finite_floats))
    def test_softmax_backward_matches_fd(self, x):
        out = softmax(x)
        g = np.ones_like(x)
        grad = softmax_backward(g, out)
        # Directional finite difference.
        rng = np.random.default_rng(1)
        d = rng.standard_normal(x.shape)
        eps = 1e-6
        f = lambda z: softmax(z).sum()
        num = (f(x + eps * d) - f(x - eps * d)) / (2 * eps)
        assert num == pytest.approx(float((grad * d).sum()), abs=1e-4)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 4), -100.0)
        logits[0, 2] = 100.0
        loss, _ = cross_entropy(logits, np.array([2]))
        assert loss < 1e-6

    def test_uniform_is_log_vocab(self):
        logits = np.zeros((5, 7))
        loss, _ = cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss == pytest.approx(np.log(7))

    def test_gradient_matches_fd(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 5))
        targets = rng.integers(0, 5, size=3)
        _, grad = cross_entropy(logits, targets)
        eps = 1e-6
        d = rng.standard_normal(logits.shape)
        lp, _ = cross_entropy(logits + eps * d, targets)
        lm, _ = cross_entropy(logits - eps * d, targets)
        assert (lp - lm) / (2 * eps) == pytest.approx(float((grad * d).sum()), rel=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.zeros((3,), dtype=int))

    def test_token_nll_consistent_with_mean_loss(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 6))
        targets = rng.integers(0, 6, size=4)
        loss, _ = cross_entropy(logits, targets)
        assert token_nll(logits, targets).mean() == pytest.approx(loss)


class TestRMSNorm:
    def test_unit_rms_output(self):
        x = np.random.default_rng(0).standard_normal((2, 8))
        out, _ = rmsnorm(x, np.ones(8))
        rms = np.sqrt((out**2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_weight_scales(self):
        x = np.random.default_rng(0).standard_normal((2, 8))
        out1, _ = rmsnorm(x, np.ones(8))
        out2, _ = rmsnorm(x, 2 * np.ones(8))
        assert np.allclose(out2, 2 * out1)

    def test_backward_matches_fd(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 8))
        w = rng.standard_normal(8)
        out, cache = rmsnorm(x, w)
        upstream = rng.standard_normal(out.shape)
        dx, dw = rmsnorm_backward(upstream, cache)
        eps = 1e-6
        d = rng.standard_normal(x.shape)
        f = lambda z: float((rmsnorm(z, w)[0] * upstream).sum())
        num = (f(x + eps * d) - f(x - eps * d)) / (2 * eps)
        assert num == pytest.approx(float((dx * d).sum()), rel=1e-4)
        dweight = rng.standard_normal(8)
        g = lambda ww: float((rmsnorm(x, ww)[0] * upstream).sum())
        num_w = (g(w + eps * dweight) - g(w - eps * dweight)) / (2 * eps)
        assert num_w == pytest.approx(float((dw * dweight).sum()), rel=1e-4)


class TestGelu:
    def test_known_values(self):
        out, _ = gelu(np.array([0.0]))
        assert out[0] == pytest.approx(0.0)
        out, _ = gelu(np.array([100.0]))
        assert out[0] == pytest.approx(100.0, rel=1e-6)

    def test_backward_matches_fd(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(16)
        out, cache = gelu(x)
        grad = gelu_backward(np.ones_like(x), cache)
        eps = 1e-6
        num = (gelu(x + eps)[0] - gelu(x - eps)[0]) / (2 * eps)
        assert np.allclose(grad, num, atol=1e-5)


class TestRope:
    def test_angles_shape(self):
        cos, sin = rope_angles(np.arange(5), 8)
        assert cos.shape == sin.shape == (5, 4)

    def test_position_zero_is_identity(self):
        x = np.random.default_rng(0).standard_normal((2, 1, 8))
        out = apply_rope(x, np.array([0]))
        assert np.allclose(out, x)

    def test_preserves_norm(self):
        """Rotations are orthogonal: vector norms are invariant."""
        x = np.random.default_rng(0).standard_normal((3, 7, 8))
        out = apply_rope(x, np.arange(7))
        assert np.allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1)
        )

    def test_unapply_inverts(self):
        x = np.random.default_rng(1).standard_normal((2, 9, 16))
        pos = np.arange(9) * 3
        assert np.allclose(unapply_rope(apply_rope(x, pos), pos), x, atol=1e-12)

    def test_relative_property(self):
        """Attention scores depend only on relative distance: rotating q at
        p and k at s gives the same dot product as (p+delta, s+delta)."""
        rng = np.random.default_rng(2)
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 1, 8))
        for delta in (0, 5, 100):
            qs = apply_rope(q, np.array([7 + delta]))
            ks = apply_rope(k, np.array([3 + delta]))
            score = float((qs * ks).sum())
            if delta == 0:
                base = score
            assert score == pytest.approx(base, rel=1e-9)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(np.arange(3), 7)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_rotation_orthogonality_property(self, position):
        x = np.ones((1, 8))
        out = apply_rope(x, np.array([position]))
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(x), rel=1e-9)
