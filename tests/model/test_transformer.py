"""Tests for the NumPy transformer: shapes, gradients, cache equivalence."""

import numpy as np
import pytest

from repro.model import ModelConfig, PEMode, TinyTransformer, VOCAB_SIZE


@pytest.fixture(scope="module")
def tiny():
    cfg = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=32, n_layers=2, n_heads=2, d_ff=64,
        context_window=64,
    )
    return TinyTransformer(cfg, seed=3, dtype=np.float64)


def tokens(n, seed=0):
    return np.random.default_rng(seed).integers(0, VOCAB_SIZE, size=n)


class TestConfig:
    def test_head_dim(self):
        assert ModelConfig(d_model=64, n_heads=4).head_dim == 16

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=65, n_heads=4)

    def test_head_dim_must_be_even(self):
        with pytest.raises(ValueError):
            ModelConfig(d_model=12, n_heads=4)  # head_dim 3

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ModelConfig(context_window=1)


class TestForward:
    def test_logit_shape(self, tiny):
        logits, _ = tiny.forward(tokens(10)[None])
        assert logits.shape == (1, 10, VOCAB_SIZE)

    def test_causality(self, tiny):
        """Changing a future token must not affect earlier logits."""
        t1 = tokens(12, seed=1)
        t2 = t1.copy()
        t2[-1] = (t2[-1] + 1) % VOCAB_SIZE
        l1, _ = tiny.forward(t1[None])
        l2, _ = tiny.forward(t2[None])
        assert np.allclose(l1[0, :-1], l2[0, :-1])
        assert not np.allclose(l1[0, -1], l2[0, -1])

    def test_batch_rows_independent(self, tiny):
        a = tokens(8, seed=1)
        b = tokens(8, seed=2)
        batched, _ = tiny.forward(np.stack([a, b]))
        single, _ = tiny.forward(a[None])
        assert np.allclose(batched[0], single[0])

    def test_n_params_positive(self, tiny):
        assert tiny.n_params > 10_000


class TestGradients:
    def test_finite_difference_all_param_kinds(self, tiny):
        rng = np.random.default_rng(9)
        toks = rng.integers(0, VOCAB_SIZE, size=(2, 8))
        targ = rng.integers(0, VOCAB_SIZE, size=(2, 8))
        _, grads = tiny.loss_and_grads(toks, targ)
        eps = 1e-6
        for name in [
            "emb", "wout", "lnf",
            "l0.ln1", "l0.wq", "l0.wk", "l0.wv", "l0.wo",
            "l1.ln2", "l1.w1", "l1.w2",
        ]:
            p = tiny.params[name]
            idx = tuple(rng.integers(0, s) for s in p.shape)
            orig = p[idx]
            p[idx] = orig + eps
            lp, _ = tiny.loss_and_grads(toks, targ)
            p[idx] = orig - eps
            lm, _ = tiny.loss_and_grads(toks, targ)
            p[idx] = orig
            numeric = (lp - lm) / (2 * eps)
            analytic = grads[name][idx]
            assert numeric == pytest.approx(analytic, rel=1e-3, abs=1e-9), name

    def test_grads_cover_all_params(self, tiny):
        toks = tokens(6)[None]
        _, grads = tiny.loss_and_grads(toks, toks)
        assert set(grads) == set(tiny.params)
        for name, g in grads.items():
            assert g.shape == tiny.params[name].shape, name


class TestCacheEquivalence:
    @pytest.mark.parametrize("mode", [PEMode.DECOUPLED, PEMode.EMBEDDED])
    def test_incremental_matches_full(self, tiny, mode):
        """Without truncation, both cache modes equal the full forward."""
        t = tokens(20, seed=5)
        full, _ = tiny.forward(t[None])
        cache = tiny.new_cache(mode)
        parts = [
            tiny.forward_with_cache(t[:6], cache),
            tiny.forward_with_cache(t[6:13], cache),
            tiny.forward_with_cache(t[13:], cache),
        ]
        assert np.allclose(full[0], np.concatenate(parts), atol=1e-10)

    def test_token_at_a_time_decoding(self, tiny):
        t = tokens(10, seed=6)
        full, _ = tiny.forward(t[None])
        cache = tiny.new_cache()
        rows = [tiny.forward_with_cache(t[i : i + 1], cache)[0] for i in range(10)]
        assert np.allclose(full[0], np.stack(rows), atol=1e-10)

    def test_cache_rejects_2d_block(self, tiny):
        with pytest.raises(ValueError):
            tiny.forward_with_cache(tokens(6)[None], tiny.new_cache())


class TestTruncationSemantics:
    def test_decoupled_truncation_equals_recompute_positions(self, tiny):
        """After decoupled truncation, logits must equal a fresh cache fed
        the kept tokens *whose KV came from the longer context*?  No — the
        K/V values differ (they attended to dropped tokens); what must
        match is the positional geometry: scores computed at positions
        0..k-1.  We verify the weaker, exact property: a decoupled cache's
        keys are re-rotated at their current indices, so manually building
        a cache from the kept KV yields identical next-token logits."""
        t = tokens(16, seed=7)
        cache = tiny.new_cache(PEMode.DECOUPLED)
        tiny.forward_with_cache(t, cache)
        cache.truncate(8)

        clone = tiny.new_cache(PEMode.DECOUPLED)
        for src, dst in zip(cache.layers, clone.layers):
            dst.append(src.k.copy(), src.v.copy(), np.arange(8))
        nxt = tokens(1, seed=8)
        a = tiny.forward_with_cache(nxt, cache)
        b = tiny.forward_with_cache(nxt, clone)
        assert np.allclose(a, b, atol=1e-12)

    def test_embedded_truncation_diverges_from_decoupled(self, tiny):
        """NKVT: embedded positions make post-truncation logits differ."""
        t = tokens(16, seed=9)
        dec = tiny.new_cache(PEMode.DECOUPLED)
        emb = tiny.new_cache(PEMode.EMBEDDED)
        tiny.forward_with_cache(t, dec)
        tiny.forward_with_cache(t, emb)
        dec.truncate(8)
        emb.truncate(8)
        nxt = tokens(1, seed=10)
        a = tiny.forward_with_cache(nxt, dec)
        b = tiny.forward_with_cache(nxt, emb)
        assert not np.allclose(a, b, atol=1e-6)

    def test_no_truncation_modes_agree(self, tiny):
        t = tokens(12, seed=11)
        dec = tiny.new_cache(PEMode.DECOUPLED)
        emb = tiny.new_cache(PEMode.EMBEDDED)
        a = tiny.forward_with_cache(t, dec)
        b = tiny.forward_with_cache(t, emb)
        assert np.allclose(a, b, atol=1e-10)


class TestStateDict:
    def test_roundtrip(self, tiny):
        state = tiny.state_dict()
        clone = TinyTransformer(tiny.config, seed=99, dtype=np.float64)
        clone.load_state_dict(state)
        t = tokens(8, seed=12)
        a, _ = tiny.forward(t[None])
        b, _ = clone.forward(t[None])
        assert np.allclose(a, b)

    def test_unknown_key_rejected(self, tiny):
        clone = TinyTransformer(tiny.config, seed=0)
        with pytest.raises(KeyError):
            clone.load_state_dict({"bogus": np.zeros(3)})

    def test_shape_mismatch_rejected(self, tiny):
        clone = TinyTransformer(tiny.config, seed=0)
        with pytest.raises(ValueError):
            clone.load_state_dict({"emb": np.zeros((2, 2))})

    def test_sequence_nll_shape(self, tiny):
        t = tokens(9, seed=13)
        nll = tiny.sequence_nll(t)
        assert nll.shape == (8,)
        assert np.all(nll > 0)
