"""Tests for the NumPy KV cache with decoupled/embedded positions."""

import numpy as np
import pytest

from repro.model import KVCache, PEMode
from repro.model.kvcache import LayerKVCache


def kv_block(n_heads=2, s=4, hd=8, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n_heads, s, hd)).astype(np.float32),
        rng.standard_normal((n_heads, s, hd)).astype(np.float32),
    )


class TestLayerKVCache:
    def test_starts_empty(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        assert len(c) == 0

    def test_append_grows(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        k, v = kv_block()
        c.append(k, v, np.arange(4))
        assert len(c) == 4
        c.append(k, v, np.arange(4, 8))
        assert len(c) == 8
        assert list(c.stored_positions) == list(range(8))

    def test_append_shape_mismatch(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        k, v = kv_block()
        with pytest.raises(ValueError):
            c.append(k, v[:, :2], np.arange(4))
        with pytest.raises(ValueError):
            c.append(k[:1], v[:1], np.arange(4))

    def test_truncate_keeps_most_recent(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        k, v = kv_block(s=6)
        c.append(k, v, np.arange(6))
        c.truncate(2)
        assert len(c) == 2
        assert np.allclose(c.k, k[:, -2:, :])
        assert list(c.stored_positions) == [4, 5]

    def test_truncate_to_zero(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        k, v = kv_block()
        c.append(k, v, np.arange(4))
        c.truncate(0)
        assert len(c) == 0

    def test_truncate_noop_when_bigger(self):
        c = LayerKVCache(2, 8, PEMode.DECOUPLED)
        k, v = kv_block()
        c.append(k, v, np.arange(4))
        c.truncate(10)
        assert len(c) == 4

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            LayerKVCache(2, 8, PEMode.DECOUPLED).truncate(-1)


class TestKVCache:
    def test_layers_independent_objects(self):
        cache = KVCache(3, 2, 8)
        assert cache.n_layers == 3
        k, v = kv_block()
        cache.layers[0].append(k, v, np.arange(4))
        assert len(cache.layers[0]) == 4
        assert len(cache.layers[1]) == 0

    def test_len_is_layer0(self):
        cache = KVCache(2, 2, 8)
        k, v = kv_block()
        cache.layers[0].append(k, v, np.arange(4))
        cache.layers[1].append(k, v, np.arange(4))
        assert len(cache) == 4

    def test_truncate_all_layers(self):
        cache = KVCache(2, 2, 8)
        k, v = kv_block()
        for layer in cache.layers:
            layer.append(k, v, np.arange(4))
        cache.truncate(1)
        assert all(len(layer) == 1 for layer in cache.layers)

    def test_mode_propagates(self):
        cache = KVCache(2, 2, 8, PEMode.EMBEDDED)
        assert all(layer.mode is PEMode.EMBEDDED for layer in cache.layers)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            KVCache(0, 2, 8)
