"""Tests for real-model multi-turn serving with KV reuse."""

import numpy as np
import pytest

from repro.model import ModelConfig, TinyTransformer, VOCAB_SIZE
from repro.model.serving import TinyChatServer


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=32, n_layers=2, n_heads=2, d_ff=64,
        context_window=64,
    )
    return TinyTransformer(cfg, seed=11)


def prompt(n, seed):
    return np.random.default_rng(seed).integers(0, VOCAB_SIZE, size=n)


class TestBasicServing:
    def test_first_turn(self, model):
        server = TinyChatServer(model)
        result = server.serve_turn(1, prompt(10, 0), max_new_tokens=5)
        assert result.reused_tokens == 0
        assert result.prefilled_tokens == 10
        assert 1 <= result.reply.shape[0] <= 5

    def test_second_turn_reuses_cache(self, model):
        server = TinyChatServer(model)
        first = server.serve_turn(1, prompt(10, 0), max_new_tokens=5)
        second = server.serve_turn(1, prompt(6, 1), max_new_tokens=5)
        assert second.reused_tokens == 10 + first.reply.shape[0]
        assert second.prefilled_tokens == 6  # only the new tokens

    def test_sessions_isolated(self, model):
        server = TinyChatServer(model)
        server.serve_turn(1, prompt(10, 0))
        result = server.serve_turn(2, prompt(10, 0))
        assert result.reused_tokens == 0
        assert len(server.sessions) == 2

    def test_end_session(self, model):
        server = TinyChatServer(model)
        server.serve_turn(1, prompt(5, 0))
        server.end_session(1)
        assert server.stored_cache_tokens == 0
        result = server.serve_turn(1, prompt(5, 1))
        assert result.reused_tokens == 0

    def test_stop_token(self, model):
        server = TinyChatServer(model)
        p = prompt(8, 3)
        probe = server.serve_turn(99, p, max_new_tokens=8)
        if probe.reply.shape[0] > 1:
            stopper = int(probe.reply[1])
            server2 = TinyChatServer(model)
            result = server2.serve_turn(1, p, max_new_tokens=8, stop_token=stopper)
            assert stopper not in result.reply[1:]

    def test_validation(self, model):
        server = TinyChatServer(model)
        with pytest.raises(ValueError):
            server.serve_turn(1, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            server.serve_turn(1, prompt(4, 0), max_new_tokens=0)
        with pytest.raises(ValueError):
            TinyChatServer(model, truncation_ratio=1.0)


class TestCachedEqualsRecompute:
    """The paper's correctness claim: decoupled-PE reuse is exact."""

    def test_replies_identical_across_turns(self, model):
        cached = TinyChatServer(model, cached=True)
        recompute = TinyChatServer(model, cached=False)
        for turn in range(3):
            p = prompt(7, 100 + turn)
            a = cached.serve_turn(1, p, max_new_tokens=6)
            b = recompute.serve_turn(1, p, max_new_tokens=6)
            assert np.array_equal(a.reply, b.reply), f"turn {turn}"

    def test_cached_prefills_far_less(self, model):
        cached = TinyChatServer(model, cached=True)
        recompute = TinyChatServer(model, cached=False)
        for turn in range(4):
            p = prompt(6, 200 + turn)
            cached.serve_turn(1, p, max_new_tokens=4)
            recompute.serve_turn(1, p, max_new_tokens=4)
        assert cached.prefilled_tokens_total < 0.5 * recompute.prefilled_tokens_total


class TestOverflow:
    def test_window_overflow_truncates(self, model):
        server = TinyChatServer(model, context_window=32)
        server.serve_turn(1, prompt(20, 0), max_new_tokens=4)
        result = server.serve_turn(1, prompt(20, 1), max_new_tokens=4)
        assert result.truncated_tokens > 0
        record = server.sessions[1]
        assert len(record.cache) <= 32 + 4  # prompt window + small tail
        assert len(record.history_tokens) == len(record.cache)

    def test_history_and_cache_stay_aligned(self, model):
        server = TinyChatServer(model, context_window=32)
        for turn in range(5):
            server.serve_turn(1, prompt(12, turn), max_new_tokens=3)
            record = server.sessions[1]
            assert len(record.history_tokens) == len(record.cache)

    def test_serving_continues_after_many_overflows(self, model):
        server = TinyChatServer(model, context_window=32)
        for turn in range(6):
            result = server.serve_turn(1, prompt(18, 50 + turn), max_new_tokens=2)
            assert result.reply.shape[0] >= 1
        assert server.sessions[1].turns_served == 6
