"""Tests for corpora, training loop, Adam and overflow evaluation."""

import numpy as np
import pytest

from repro.model import (
    Adam,
    COPY_CORPORA,
    ModelConfig,
    PEMode,
    Scheme,
    TinyTransformer,
    TrainConfig,
    VOCAB_SIZE,
    decode,
    encode,
    evaluate_with_overflow,
    make_copy_corpus,
    make_copy_document,
    make_kv_corpus,
    make_kv_document,
    make_retrieval_case,
    train_model,
    training_batches,
    training_batches_padded,
)
from repro.model.evaluate import _truncate_keep
from repro.model.train import make_trained_model


class TestEncoding:
    def test_roundtrip(self):
        text = "ab3 ?z9 ."
        assert decode(encode(text)) == text

    def test_rejects_unknown_char(self):
        with pytest.raises(ValueError):
            encode("UPPER")

    def test_ids_in_vocab(self):
        ids = encode("hello world 123")
        assert ids.min() >= 0 and ids.max() < VOCAB_SIZE


class TestCopyCorpus:
    def test_document_structure(self):
        rng = np.random.default_rng(0)
        doc = make_copy_document(COPY_CORPORA["synth-wikitext"], rng)
        text = decode(doc)
        assert "." in text
        words = text.replace(".", "").split()
        # Few distinct words, heavily reused.
        assert len(set(words)) <= COPY_CORPORA["synth-wikitext"].words_per_doc
        assert len(words) > len(set(words))

    def test_corpus_size(self):
        docs = make_copy_corpus(COPY_CORPORA["synth-ptb"], 5)
        assert len(docs) == 5

    def test_deterministic(self):
        spec = COPY_CORPORA["synth-c4"]
        a = make_copy_corpus(spec, 3)
        b = make_copy_corpus(spec, 3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_bad_n_docs(self):
        with pytest.raises(ValueError):
            make_copy_corpus(COPY_CORPORA["synth-c4"], 0)


class TestKVCorpus:
    def test_answers_recorded_correctly(self):
        rng = np.random.default_rng(1)
        doc = make_kv_document(8, rng)
        for pos, ans in zip(doc.answer_positions, doc.answers):
            assert doc.tokens[pos] == ans
            # Two before the answer is the '?' marker.
            assert decode(doc.tokens[pos - 2 : pos - 1]) == "?"

    def test_keys_distinct(self):
        rng = np.random.default_rng(2)
        doc = make_kv_document(10, rng)
        assert len(doc.value_of) == 10

    def test_query_answers_match_assignments(self):
        rng = np.random.default_rng(3)
        doc = make_kv_document(6, rng)
        text = decode(doc.tokens)
        for pos in doc.answer_positions:
            key = decode(doc.tokens[pos - 1 : pos])
            assert doc.value_of[key] == decode(doc.tokens[pos : pos + 1])

    def test_too_many_pairs_rejected(self):
        with pytest.raises(ValueError, match="distinct keys"):
            make_kv_document(27, np.random.default_rng(0))

    def test_explicit_query_keys(self):
        rng = np.random.default_rng(4)
        doc = make_kv_document(5, rng, query_keys=[])
        assert doc.answer_positions.shape == (0,)

    def test_unknown_query_key_rejected(self):
        rng = np.random.default_rng(5)
        base = make_kv_document(5, rng, query_keys=[])
        missing = next(k for k in "abcdefghij" if k not in base.value_of)
        with pytest.raises(ValueError):
            make_kv_document(5, np.random.default_rng(5), query_keys=[missing])

    def test_corpus(self):
        docs = make_kv_corpus(7, n_pairs=6)
        assert len(docs) == 7


class TestRetrievalCase:
    def test_overflows_window(self):
        rng = np.random.default_rng(6)
        case = make_retrieval_case(20, 3, window=48, rng=rng)
        assert case.tokens.shape[0] > 48

    def test_queried_keys_survive_truncation(self):
        """Queried keys are assigned in the tail that truncation keeps."""
        rng = np.random.default_rng(7)
        window = 48
        keep = window - window // 2
        case = make_retrieval_case(20, 3, window=window, rng=rng)
        assignments_end = 20 * 3
        kept_start = assignments_end - keep
        for pos in case.answer_positions:
            key = decode(case.tokens[pos - 1 : pos])
            # Find the key's assignment position.
            text = decode(case.tokens[:assignments_end])
            k_index = text.index(f"{key}{case.value_of[key]} ")
            assert k_index >= kept_start - keep

    def test_underflow_rejected(self):
        with pytest.raises(ValueError, match="overflow"):
            make_retrieval_case(5, 1, window=96, rng=np.random.default_rng(0))


class TestBatching:
    def test_training_batches_shapes(self):
        docs = [encode("abcd efgh " * 30)]
        batches = list(training_batches(docs, seq_len=16, batch_size=4, n_batches=3))
        assert len(batches) == 3
        for tokens, targets in batches:
            assert tokens.shape == targets.shape == (4, 16)
            assert np.array_equal(tokens[:, 1:], targets[:, :-1])

    def test_training_batches_too_small_corpus(self):
        with pytest.raises(ValueError, match="too small"):
            list(training_batches([encode("ab")], 16, 2, 1))

    def test_padded_batches_align_documents(self):
        docs = [encode("abc "), encode("defgh ")]
        batches = list(training_batches_padded(docs, batch_size=3, n_batches=2))
        for tokens, targets in batches:
            assert tokens.shape[0] == 3
            assert np.array_equal(tokens[:, 1:], targets[:, :-1])

    def test_padded_batches_validation(self):
        with pytest.raises(ValueError):
            list(training_batches_padded([], 2, 1))


class TestAdam:
    def test_minimises_quadratic(self):
        params = {"x": np.array([5.0])}
        opt = Adam(params, lr=0.1)
        for _ in range(300):
            opt.step(params, {"x": 2 * params["x"]})
        assert abs(params["x"][0]) < 0.05

    def test_unknown_grad_rejected(self):
        params = {"x": np.zeros(2)}
        opt = Adam(params)
        with pytest.raises(KeyError):
            opt.step(params, {"y": np.zeros(2)})

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam({}, lr=0.0)
        with pytest.raises(ValueError):
            Adam({}, beta1=1.0)


class TestTraining:
    def test_loss_decreases(self):
        cfg = ModelConfig(
            vocab_size=VOCAB_SIZE, d_model=32, n_layers=1, n_heads=2, d_ff=64
        )
        model = TinyTransformer(cfg, seed=0)
        docs = make_copy_corpus(COPY_CORPORA["synth-wikitext"], 20)
        losses = train_model(
            model, docs, TrainConfig(steps=30, batch_size=8, seq_len=48)
        )
        assert len(losses) == 30
        assert losses[-1] < losses[0]

    def test_make_trained_model_caches(self, tmp_path):
        cfg = ModelConfig(
            vocab_size=VOCAB_SIZE, d_model=32, n_layers=1, n_heads=2, d_ff=64
        )
        tc = TrainConfig(steps=5, batch_size=4, seq_len=32)
        m1 = make_trained_model(
            "synth-wikitext", cfg, tc, cache_dir=tmp_path
        )
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        m2 = make_trained_model("synth-wikitext", cfg, tc, cache_dir=tmp_path)
        for name in m1.params:
            assert np.array_equal(m1.params[name], m2.params[name])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus kind"):
            make_trained_model("nope", train_config=TrainConfig(steps=1))

    def test_wrong_vocab_rejected(self):
        with pytest.raises(ValueError, match="vocab"):
            make_trained_model(
                "kv", model_config=ModelConfig(vocab_size=99)
            )


class TestOverflowEvaluation:
    @pytest.fixture(scope="class")
    def model(self):
        cfg = ModelConfig(
            vocab_size=VOCAB_SIZE, d_model=32, n_layers=2, n_heads=2, d_ff=64,
            context_window=32,
        )
        return TinyTransformer(cfg, seed=4)

    def test_truncate_keep(self):
        assert _truncate_keep(96, 0.5) == 48
        assert _truncate_keep(10, 0.99) == 1

    def test_schemes_identical_without_overflow(self, model):
        doc = encode("abc def ghi jkl ")
        results = {
            s: evaluate_with_overflow(model, doc, s, window=32)
            for s in Scheme
        }
        assert results[Scheme.CA].nll_sum == pytest.approx(
            results[Scheme.TT].nll_sum
        )
        assert results[Scheme.CA].nll_sum == pytest.approx(
            results[Scheme.NKVT].nll_sum
        )
        assert all(r.n_truncations == 0 for r in results.values())

    def test_truncation_counted(self, model):
        doc = np.tile(encode("abcd "), 20)
        r = evaluate_with_overflow(model, doc, Scheme.CA, window=32)
        assert r.n_truncations > 0

    def test_all_predicted_tokens_scored(self, model):
        doc = encode("abcdefgh " * 3)
        r = evaluate_with_overflow(model, doc, Scheme.CA, window=32)
        assert r.n_predicted == doc.shape[0] - 1

    def test_positions_of_interest_filter(self, model):
        doc = encode("abcdefgh " * 3)
        r = evaluate_with_overflow(
            model, doc, Scheme.CA, window=32,
            positions_of_interest=np.array([5, 9]),
        )
        assert r.n_predicted == 2

    def test_accuracy_bounds(self, model):
        doc = np.tile(encode("xyz "), 15)
        r = evaluate_with_overflow(model, doc, Scheme.TT, window=32)
        assert 0.0 <= r.accuracy <= 1.0
        assert r.perplexity > 1.0

    def test_block_size_validation(self, model):
        doc = encode("abcd " * 5)
        with pytest.raises(ValueError):
            evaluate_with_overflow(model, doc, Scheme.CA, window=32, block_size=0)
        with pytest.raises(ValueError):
            evaluate_with_overflow(model, doc, Scheme.CA, window=32, block_size=64)

    def test_short_document_rejected(self, model):
        with pytest.raises(ValueError):
            evaluate_with_overflow(model, encode("a"), Scheme.CA)

    def test_ca_uses_decoupled_cache_nkvt_embedded(self, model):
        """Indirect check via mode-dependent divergence after overflow."""
        doc = np.tile(encode("abcdefgh "), 10)
        ca = evaluate_with_overflow(model, doc, Scheme.CA, window=32)
        nkvt = evaluate_with_overflow(model, doc, Scheme.NKVT, window=32)
        # Untrained model: values differ once truncation has happened.
        assert ca.nll_sum != pytest.approx(nkvt.nll_sum)
