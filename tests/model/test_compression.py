"""Tests for TDL-based KV-cache compression (the Section 3.4 hook)."""

import numpy as np
import pytest

from repro.model import ModelConfig, PEMode, TinyTransformer, VOCAB_SIZE
from repro.model.compression import (
    CompressionStrategy,
    attention_importance,
    compress_cache,
    evaluate_compression,
    make_tdl,
    select_cache,
)
from repro.model.corpus import encode


@pytest.fixture(scope="module")
def model():
    cfg = ModelConfig(
        vocab_size=VOCAB_SIZE, d_model=32, n_layers=2, n_heads=2, d_ff=64,
        context_window=64,
    )
    return TinyTransformer(cfg, seed=6)


def tokens(n=24, seed=0):
    return np.random.default_rng(seed).integers(0, VOCAB_SIZE, size=n)


class TestAttentionImportance:
    def test_shape_and_nonnegative(self, model):
        t = tokens(20)
        scores = attention_importance(model, t)
        assert scores.shape == (20,)
        assert np.all(scores >= 0)

    def test_early_positions_receive_more_mass(self, model):
        """Under causal attention, early keys can be attended by more
        queries, so total mass skews early for an untrained model."""
        scores = attention_importance(model, tokens(30))
        assert scores[:5].sum() > scores[-5:].sum()

    def test_total_mass_conserved(self, model):
        """Each query distributes exactly 1 unit per head per layer."""
        t = tokens(16)
        scores = attention_importance(model, t)
        c = model.config
        expected = c.n_layers * c.n_heads * t.shape[0]
        assert scores.sum() == pytest.approx(expected, rel=1e-5)

    def test_rejects_2d(self, model):
        with pytest.raises(ValueError):
            attention_importance(model, tokens(8)[None])


class TestMakeTDL:
    def test_discards_lowest_scores(self):
        importance = np.array([9.0, 9, 0.1, 5, 0.2, 9, 9, 9, 9, 9, 9, 9, 9])
        tdl = make_tdl(importance, 2, protect_initial=1, protect_recent=1)
        assert list(tdl) == [2, 4]

    def test_protects_initial_and_recent(self):
        importance = np.zeros(10)
        tdl = make_tdl(importance, 4, protect_initial=2, protect_recent=2)
        assert tdl.min() >= 2
        assert tdl.max() < 8

    def test_zero_discard(self):
        assert make_tdl(np.ones(5), 0).size == 0

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            make_tdl(np.ones(10), 9, protect_initial=2, protect_recent=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_tdl(np.ones(5), -1)


class TestSelectCache:
    def test_selected_cache_matches_manual_build(self, model):
        """Selecting indices then decoding equals a cache built from the
        same K/V rows — the decoupled re-numbering is exact."""
        t = tokens(16, seed=3)
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(t, cache)
        keep = np.array([0, 1, 5, 9, 14, 15])
        out = select_cache(cache, keep)
        assert len(out) == 6
        for src, dst in zip(cache.layers, out.layers):
            assert np.allclose(dst.k, src.k[:, keep, :])
            assert np.allclose(dst.v, src.v[:, keep, :])

    def test_embedded_rejected(self, model):
        cache = model.new_cache(PEMode.EMBEDDED)
        model.forward_with_cache(tokens(8), cache)
        with pytest.raises(ValueError, match="decoupled"):
            select_cache(cache, np.array([0, 1]))

    def test_out_of_range_rejected(self, model):
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(tokens(8), cache)
        with pytest.raises(IndexError):
            select_cache(cache, np.array([99]))


class TestCompressCache:
    @pytest.mark.parametrize("strategy", list(CompressionStrategy))
    def test_target_size_met(self, model, strategy):
        t = tokens(30, seed=4)
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(t, cache)
        out = compress_cache(model, t, cache, 0.5, strategy)
        assert len(out) == 15

    def test_keep_ratio_one_is_identity(self, model):
        t = tokens(10)
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(t, cache)
        assert compress_cache(
            model, t, cache, 1.0, CompressionStrategy.RANDOM
        ) is cache

    def test_bad_ratio_rejected(self, model):
        cache = model.new_cache(PEMode.DECOUPLED)
        model.forward_with_cache(tokens(8), cache)
        with pytest.raises(ValueError):
            compress_cache(model, tokens(8), cache, 0.0, CompressionStrategy.RANDOM)


class TestEvaluateCompression:
    def test_full_ratio_matches_uncompressed_model(self, model):
        docs = [encode("abc def ghi jkl mno pqr stu. " * 2) for _ in range(3)]
        r = evaluate_compression(
            model, docs, 1.0, CompressionStrategy.RECENT_ONLY
        )
        assert r.n_predicted > 0
        assert r.perplexity > 1.0

    def test_compression_degrades_gracefully(self, model):
        docs = [encode("abc def ghi jkl mno pqr stu. " * 2) for _ in range(3)]
        full = evaluate_compression(model, docs, 1.0, CompressionStrategy.RANDOM)
        half = evaluate_compression(model, docs, 0.5, CompressionStrategy.RANDOM)
        # Losing half the context cannot *improve* an untrained model much;
        # mainly we check both paths run and report sane numbers.
        assert half.n_predicted == full.n_predicted
        assert half.perplexity > 0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            evaluate_compression(model, [], 0.5, CompressionStrategy.RANDOM)
        with pytest.raises(ValueError):
            evaluate_compression(
                model, [tokens(10)], 0.5, CompressionStrategy.RANDOM,
                prompt_fraction=1.5,
            )
