"""Tests for truncation policy, session state, metrics and batch state."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    ActiveJob,
    BatchState,
    MetricsCollector,
    SessionState,
    TurnOutcome,
    TurnRecord,
    TurnRequest,
    apply_context_window,
    clamp_decode_tokens,
)
from repro.store.attention_store import LookupStatus
from repro.workload.trace import Conversation, Turn


class TestApplyContextWindow:
    def test_no_overflow_is_identity(self):
        out = apply_context_window(1000, 100, 4096, 0.5)
        assert out.history_tokens == 1000
        assert out.q_tokens == 100
        assert not out.overflowed

    def test_overflow_drops_half_window(self):
        """Paper example: 4K window, ratio 0.5 -> cut the first 2K."""
        out = apply_context_window(4000, 200, 4096, 0.5)
        assert out.dropped_tokens == 2048
        assert out.history_tokens == 4000 - 2048
        assert out.prompt_tokens <= 4096

    def test_repeated_cuts_until_fit(self):
        out = apply_context_window(10000, 100, 4096, 0.5)
        assert out.prompt_tokens <= 4096
        assert out.history_tokens + out.dropped_tokens == 10000 + 0

    def test_question_clamped_to_window(self):
        out = apply_context_window(0, 5000, 2048, 0.5)
        assert out.q_tokens == 2048
        assert out.dropped_tokens == 5000 - 2048

    def test_history_never_negative(self):
        out = apply_context_window(100, 4000, 4096, 0.5)
        assert out.history_tokens >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_context_window(-1, 10, 100, 0.5)
        with pytest.raises(ValueError):
            apply_context_window(0, 0, 100, 0.5)
        with pytest.raises(ValueError):
            apply_context_window(0, 10, 0, 0.5)
        with pytest.raises(ValueError):
            apply_context_window(0, 10, 100, 1.0)

    @given(
        st.integers(min_value=0, max_value=20000),
        st.integers(min_value=1, max_value=8000),
        st.sampled_from([2048, 4096, 32768]),
        st.floats(min_value=0.1, max_value=0.9),
    )
    def test_invariants(self, history, q, window, ratio):
        out = apply_context_window(history, q, window, ratio)
        assert out.prompt_tokens <= window
        assert out.history_tokens >= 0
        assert 1 <= out.q_tokens <= q
        # Conservation: dropped + kept == original.
        assert out.dropped_tokens + out.history_tokens + out.q_tokens == history + q


class TestClampDecodeTokens:
    def test_fits(self):
        assert clamp_decode_tokens(100, 50, 4096) == 50

    def test_clamped(self):
        assert clamp_decode_tokens(4000, 500, 4096) == 96

    def test_floor_of_one(self):
        assert clamp_decode_tokens(4096, 500, 4096) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            clamp_decode_tokens(0, 5, 100)
        with pytest.raises(ValueError):
            clamp_decode_tokens(5, 0, 100)


def make_session(turns=3):
    conv = Conversation(
        session_id=1,
        arrival_time=0.0,
        turns=tuple(Turn(10, 20, 0.0 if i == 0 else 5.0) for i in range(turns)),
    )
    return SessionState(conversation=conv)


class TestSessionState:
    def test_initial(self):
        s = make_session()
        assert s.next_turn == 0
        assert s.history_tokens == 0
        assert not s.finished

    def test_serving_accumulates_history(self):
        s = make_session()
        s.record_turn_served(prompt_tokens=10, generated_tokens=20)
        assert s.history_tokens == 30
        assert s.next_turn == 1

    def test_finished(self):
        s = make_session(turns=1)
        s.record_turn_served(10, 20)
        assert s.finished
        with pytest.raises(RuntimeError):
            s.record_turn_served(10, 20)

    def test_truncation_bookkeeping(self):
        s = make_session()
        s.record_turn_served(10, 20)
        s.record_truncation(15)
        assert s.history_tokens == 15
        assert s.truncated_tokens_total == 15
        assert s.overflow_events == 1

    def test_truncation_zero_is_noop(self):
        s = make_session()
        s.record_truncation(0)
        assert s.overflow_events == 0

    def test_over_truncation_raises(self):
        s = make_session()
        with pytest.raises(RuntimeError):
            s.record_truncation(5)


def make_record(gturn=0, outcome=TurnOutcome.HIT_DRAM, ttft=0.1, **kw):
    defaults = dict(
        session_id=1,
        turn_index=1,
        global_turn=gturn,
        outcome=outcome,
        arrival_time=0.0,
        prefill_start=1.0,
        prompt_tokens=100,
        new_tokens=10,
        reused_tokens=90,
        generated_tokens=20,
        ttft=ttft,
        prefill_gpu_time=ttft,
        completion_time=5.0,
    )
    defaults.update(kw)
    return TurnRecord(**defaults)


class TestMetrics:
    def test_outcome_from_lookup(self):
        assert TurnOutcome.from_lookup(LookupStatus.HIT_DRAM) is TurnOutcome.HIT_DRAM
        assert TurnOutcome.from_lookup(LookupStatus.MISS) is TurnOutcome.MISS

    def test_hit_flags(self):
        assert TurnOutcome.HIT_DISK.is_hit
        assert not TurnOutcome.MISS.is_hit
        assert not TurnOutcome.FIRST_TURN.is_hit

    def test_hit_rate_excludes_first_turns(self):
        m = MetricsCollector()
        m.record_turn(make_record(0, TurnOutcome.FIRST_TURN))
        m.record_turn(make_record(1, TurnOutcome.HIT_DRAM))
        m.record_turn(make_record(2, TurnOutcome.MISS))
        s = m.summarise()
        assert s.n_lookups == 2
        assert s.hit_rate == 0.5
        assert s.dram_hit_rate == 0.5

    def test_warmup_excluded(self):
        m = MetricsCollector(warmup_turns=2)
        m.record_turn(make_record(0, ttft=100.0))
        m.record_turn(make_record(1, ttft=100.0))
        m.record_turn(make_record(2, ttft=1.0))
        s = m.summarise()
        assert s.n_turns == 1
        assert s.mean_ttft == 1.0

    def test_makespan_covers_all_turns(self):
        m = MetricsCollector(warmup_turns=1)
        m.record_turn(make_record(0, arrival_time=0.0, completion_time=10.0))
        m.record_turn(make_record(1, arrival_time=2.0, completion_time=50.0))
        assert m.summarise().makespan == 50.0

    def test_queue_delay(self):
        r = make_record(arrival_time=1.0, prefill_start=4.0)
        assert r.queue_delay == 3.0

    def test_prefill_throughput(self):
        m = MetricsCollector()
        m.record_turn(make_record(0, prompt_tokens=1000, prefill_gpu_time=2.0, ttft=2.0))
        assert m.summarise().prefill_throughput == 500.0

    def test_gpu_busy_accounting(self):
        m = MetricsCollector()
        m.record_gpu_busy(2.0)
        m.record_gpu_busy(3.0)
        assert m.summarise().total_gpu_busy_time == 5.0
        with pytest.raises(ValueError):
            m.record_gpu_busy(-1.0)

    def test_empty_summary(self):
        s = MetricsCollector().summarise()
        assert s.n_turns == 0
        assert s.hit_rate == 0.0
        assert s.prefill_throughput == 0.0


def make_job(sid, context=100, remaining=10):
    request = TurnRequest(
        session_id=sid,
        turn_index=0,
        q_tokens=10,
        a_tokens=remaining,
        arrival_time=0.0,
        global_turn=0,
    )
    record = make_record(session_id=sid)
    return ActiveJob(
        request=request,
        record=record,
        context_tokens=context,
        remaining_tokens=remaining,
        reserved_tokens=context + remaining,
    )


class TestBatchState:
    def test_add_and_capacity(self):
        b = BatchState(2)
        b.add(make_job(1))
        assert len(b) == 1 and not b.is_full
        b.add(make_job(2))
        assert b.is_full
        with pytest.raises(RuntimeError):
            b.add(make_job(3))

    def test_duplicate_session_rejected(self):
        b = BatchState(4)
        b.add(make_job(1))
        with pytest.raises(ValueError):
            b.add(make_job(1))

    def test_context_sum_tracks_advance(self):
        b = BatchState(4)
        b.add(make_job(1, context=100, remaining=10))
        b.add(make_job(2, context=200, remaining=5))
        assert b.context_sum == 300
        finished = b.advance(5)
        assert [j.session_id for j in finished] == [2]
        # Job 2 left with context 205; job 1 remains with 105.
        assert b.context_sum == 105

    def test_advance_cannot_overshoot(self):
        b = BatchState(2)
        b.add(make_job(1, remaining=3))
        with pytest.raises(ValueError):
            b.advance(4)

    def test_min_remaining(self):
        b = BatchState(4)
        b.add(make_job(1, remaining=10))
        b.add(make_job(2, remaining=3))
        assert b.min_remaining() == 3

    def test_min_remaining_empty_raises(self):
        with pytest.raises(RuntimeError):
            BatchState(2).min_remaining()

    def test_advance_validation(self):
        b = BatchState(2)
        b.add(make_job(1))
        with pytest.raises(ValueError):
            b.advance(0)
