"""Determinism: same trace + same fault seed => identical results.

Fault injection uses a dedicated seeded RNG, so repeated runs are exactly
reproducible and never touch global random state.
"""

import dataclasses
import random

from repro.config import EngineConfig
from repro.engine import ServingEngine
from repro.faults import FaultConfig, fault_profile
from repro.models import get_model
from repro.workload import generate_trace


def run(trace, fault_config):
    engine = ServingEngine(
        get_model("llama-13b"),
        engine_config=EngineConfig(batch_size=8),
        fault_config=fault_config,
    )
    result = engine.run(trace)
    return engine, result


def snapshot(engine, result):
    return (
        dataclasses.asdict(result.summary),
        dataclasses.asdict(engine.store.stats),
        engine.ssd.bytes_moved,
        engine.pcie_h2d.bytes_moved,
        engine.pcie_d2h.bytes_moved,
        [(t.session_id, t.outcome, t.ttft) for t in engine.metrics.records],
    )


def test_same_seed_same_run():
    trace = generate_trace(n_sessions=30, seed=23)
    config = fault_profile("chaos", seed=11)
    assert snapshot(*run(trace, config)) == snapshot(*run(trace, config))


def test_different_fault_seeds_diverge():
    trace = generate_trace(n_sessions=30, seed=23)
    a = snapshot(*run(trace, fault_profile("chaos", seed=1)))
    b = snapshot(*run(trace, fault_profile("chaos", seed=2)))
    assert a != b


def test_fault_injection_leaves_global_rng_alone():
    random.seed(42)
    expected = [random.random() for _ in range(5)]
    random.seed(42)
    trace = generate_trace(n_sessions=10, seed=23)
    run(trace, FaultConfig(seed=7, ssd_fault_rate=0.1, corruption_rate=0.1))
    assert [random.random() for _ in range(5)] == expected
