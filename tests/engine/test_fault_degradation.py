"""Engine-level graceful degradation under injected faults.

The key guarantees: corrupt or lost KV is never served (it becomes a
recompute fallback), an inert FaultConfig is bit-identical to no fault
config at all, and chaos-level fault profiles complete without error.
"""

import dataclasses

import pytest

from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine, TurnOutcome
from repro.faults import FaultConfig, TierLossEvent, fault_profile
from repro.models import get_model
from repro.workload import generate_trace


def run(trace, fault_config=None, **engine_kwargs):
    engine = ServingEngine(
        get_model("llama-13b"),
        engine_config=EngineConfig(batch_size=8),
        fault_config=fault_config,
        **engine_kwargs,
    )
    return engine, engine.run(trace)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(n_sessions=40, seed=17)


class TestCorruptionNeverServed:
    def test_all_corrupt_means_all_fallbacks(self, trace):
        engine, result = run(
            trace, FaultConfig(seed=1, corruption_rate=1.0)
        )
        s = result.summary
        assert s.n_turns == trace.n_turns_total  # every turn still served
        assert s.hits_dram == s.hits_disk == 0
        assert s.reused_tokens_total == 0
        assert s.fallbacks > 0
        assert s.fallbacks + s.misses == s.n_lookups
        assert engine.store.stats.corrupt_misses == s.fallbacks
        fallback_turns = [
            t
            for t in engine.metrics.records
            if t.outcome is TurnOutcome.FALLBACK_RECOMPUTE
        ]
        assert len(fallback_turns) >= s.fallbacks
        assert all(t.reused_tokens == 0 for t in fallback_turns)

    def test_all_lost_means_plain_misses(self, trace):
        engine, result = run(trace, FaultConfig(seed=1, loss_rate=1.0))
        s = result.summary
        assert s.hits_dram == s.hits_disk == 0
        assert s.reused_tokens_total == 0
        assert engine.store.stats.lost_items > 0


class TestInertConfigIsBitIdentical:
    def test_zero_rate_config_matches_no_config(self, trace):
        engine_a, result_a = run(trace, fault_config=None)
        engine_b, result_b = run(trace, FaultConfig(seed=99))
        assert dataclasses.asdict(result_a.summary) == dataclasses.asdict(
            result_b.summary
        )
        assert engine_a.ssd.bytes_moved == engine_b.ssd.bytes_moved
        assert engine_a.pcie_h2d.bytes_moved == engine_b.pcie_h2d.bytes_moved
        assert engine_a.pcie_d2h.bytes_moved == engine_b.pcie_d2h.bytes_moved
        assert engine_b.faults is None  # inert config builds no injector


class TestChaosCompletes:
    def test_chaos_profile_serves_every_turn(self, trace):
        engine, result = run(trace, fault_profile("chaos", seed=3))
        s = result.summary
        assert s.n_turns == trace.n_turns_total
        assert s.mean_ttft > 0
        stats = engine.store.stats
        assert stats.transfer_faults + stats.corrupt_misses + stats.lost_items > 0
        engine.store.check_invariants()

    def test_chaos_degrades_but_not_below_recompute_semantics(self, trace):
        _, faulty = run(trace, fault_profile("chaos", seed=3))
        _, clean = run(trace)
        assert faulty.summary.hit_rate <= clean.summary.hit_rate + 1e-9
        assert faulty.summary.reused_tokens_total <= clean.summary.reused_tokens_total


class TestTierLoss:
    def test_scheduled_dram_loss_drops_items(self, trace):
        fault_config = FaultConfig(
            seed=5, tier_loss_events=(TierLossEvent(at=50.0, tier="dram"),)
        )
        engine, result = run(trace, fault_config)
        assert engine.store.stats.lost_items > 0
        assert result.summary.n_turns == trace.n_turns_total

    def test_disk_loss_event(self, trace):
        fault_config = FaultConfig(
            seed=5, tier_loss_events=(TierLossEvent(at=50.0, tier="disk"),)
        )
        engine, result = run(trace, fault_config)
        assert result.summary.n_turns == trace.n_turns_total
        engine.store.check_invariants()


class TestFlakySsdRetries:
    def test_transient_faults_are_retried_and_run_completes(self, trace):
        # A DRAM tier worth only ~2000 tokens forces demotions to SSD, so
        # the flaky-ssd profile actually exercises the retry path.
        kv = get_model("llama-13b").kv_bytes_per_token
        store_config = StoreConfig(dram_bytes=2000 * kv, ssd_bytes=100_000 * kv)
        engine, result = run(
            trace, fault_profile("flaky-ssd", seed=2), store_config=store_config
        )
        stats = engine.store.stats
        assert stats.transfer_faults > 0
        assert stats.transfer_retries > 0
        assert result.summary.n_turns == trace.n_turns_total
