"""Tests for the Section 3.2 overlap timing models."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    async_save_blocking_time,
    layerwise_prefill_time,
    no_preload_prefill_time,
    perfect_overlap_buffer_layers,
    preload_speedup,
    sync_save_blocking_time,
)


class TestNoPreload:
    def test_sequential_sum(self):
        assert no_preload_prefill_time(2.0, 3.0) == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            no_preload_prefill_time(-1.0, 1.0)


class TestLayerwisePreload:
    def test_compute_bound_fully_overlaps(self):
        """When compute dominates (c > d), loading hides completely except
        the first layer's wait."""
        total = layerwise_prefill_time(10, compute_time=10.0, load_time=1.0)
        assert total == pytest.approx(10.0 + 0.1)

    def test_load_bound_approaches_load_time(self):
        """When loading dominates (d >> c), the pipeline is drain-limited:
        finish ~= load_time + one layer's compute (Figure 7a)."""
        total = layerwise_prefill_time(10, compute_time=1.0, load_time=10.0)
        assert total == pytest.approx(10.0 + 0.1)

    def test_buffer_hides_load_head(self):
        """Figure 7b: a deeper read buffer shortens the pipeline."""
        t0 = layerwise_prefill_time(10, 1.0, 10.0, buffer_layers=0)
        t5 = layerwise_prefill_time(10, 1.0, 10.0, buffer_layers=5)
        t10 = layerwise_prefill_time(10, 1.0, 10.0, buffer_layers=10)
        assert t0 > t5 > t10
        # With the full cache pre-buffered, only compute remains.
        assert t10 == pytest.approx(1.0)

    def test_always_at_least_compute(self):
        assert layerwise_prefill_time(40, 2.0, 0.5, 40) >= 2.0

    def test_never_worse_than_no_preload(self):
        assert layerwise_prefill_time(40, 2.0, 3.0, 0) <= no_preload_prefill_time(
            2.0, 3.0
        )

    def test_zero_load_is_pure_compute(self):
        assert layerwise_prefill_time(40, 2.0, 0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            layerwise_prefill_time(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            layerwise_prefill_time(10, 1.0, 1.0, buffer_layers=-1)

    @given(
        st.integers(min_value=1, max_value=80),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
        st.integers(min_value=0, max_value=80),
    )
    def test_bounds_property(self, n_layers, compute, load, buffer_layers):
        """max(compute, residual-load) <= t <= load + compute, and more
        buffer never hurts."""
        t = layerwise_prefill_time(n_layers, compute, load, buffer_layers)
        assert t <= no_preload_prefill_time(compute, load) + 1e-9
        assert t >= compute - 1e-9
        t_more = layerwise_prefill_time(
            n_layers, compute, load, min(n_layers, buffer_layers + 1)
        )
        assert t_more <= t + 1e-9

    def test_paper_figure19_shape(self):
        """Figure 19: PL-B0 cuts ~35 % off NO-PL, PL-B15 ~61 %, for the
        1K-hist/100-new LLaMA-13B setting where loading dominates."""
        from repro.config import HardwareConfig
        from repro.hardware import PerfModel
        from repro.models import get_model

        pm = PerfModel(get_model("llama-13b"), HardwareConfig(num_gpus=1))
        batch = 16
        compute = pm.prefill_time(100, 1000, batch=batch)
        load = pm.kv_transfer_time(1000, 26e9, batch=batch)
        assert load > compute  # the imperfect-overlap regime of the figure
        s0 = preload_speedup(40, compute, load, 0)
        s15 = preload_speedup(40, compute, load, 15)
        assert 0.20 < s0 < 0.45
        assert 0.45 < s15 < 0.70
        assert s15 > s0


class TestPerfectOverlapBuffer:
    def test_zero_when_compute_dominates(self):
        assert perfect_overlap_buffer_layers(40, 10.0, 1.0) == 0

    def test_enough_buffer_gives_compute_bound_time(self):
        b = perfect_overlap_buffer_layers(40, 1.0, 10.0)
        t = layerwise_prefill_time(40, 1.0, 10.0, b)
        # Within one layer's load of the pure-compute floor.
        assert t <= 1.0 + 10.0 / 40 + 1e-9


class TestAsyncSave:
    def test_fully_hidden(self):
        assert async_save_blocking_time(1.0, overlap_window=2.0, n_layers=40) == 0.0

    def test_residual_when_save_longer(self):
        assert async_save_blocking_time(3.0, 1.0, 40) == pytest.approx(2.0)

    def test_write_buffer_absorbs_tail(self):
        blocked = async_save_blocking_time(3.0, 1.0, 40, write_buffer_layers=20)
        assert blocked == pytest.approx(3.0 - 1.0 - 1.5)

    def test_buffer_capped_at_layers(self):
        assert async_save_blocking_time(3.0, 0.0, 10, write_buffer_layers=99) == 0.0

    def test_sync_is_full_save(self):
        assert sync_save_blocking_time(2.5) == 2.5

    def test_paper_figure20_shape(self):
        """Figure 20: async saving cuts ~13-15 % of total execution for
        1-1.6K prompts with 20 decode steps (LLaMA-13B, bs 16, 1 GPU)."""
        from repro.config import HardwareConfig
        from repro.hardware import PerfModel
        from repro.models import get_model

        pm = PerfModel(get_model("llama-13b"), HardwareConfig(num_gpus=1))
        batch = 16
        for prompt in (1000, 1300, 1600):
            prefill = pm.prefill_time(prompt, batch=batch)
            decode = pm.decode_segment_time([prompt] * batch, 20)
            save = pm.kv_transfer_time(prompt + 20, 26e9, batch=batch)
            sync_total = prefill + decode + sync_save_blocking_time(save)
            async_total = prefill + decode + async_save_blocking_time(
                save, decode, 40, write_buffer_layers=15
            )
            reduction = 1 - async_total / sync_total
            assert 0.08 < reduction < 0.22, (prompt, reduction)

    @given(
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=40),
    )
    def test_async_never_worse_than_sync(self, save, window, buffer_layers):
        a = async_save_blocking_time(save, window, 40, buffer_layers)
        assert 0.0 <= a <= sync_save_blocking_time(save) + 1e-12
