"""End-to-end serving engine tests: RE vs CA behaviour on real traces."""

import pytest

from repro.config import (
    EngineConfig,
    EvictionPolicyName,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from repro.engine import ServingEngine, TurnOutcome
from repro.models import GiB, TiB, get_model
from repro.workload import generate_trace
from repro.workload.trace import Conversation, Trace, Turn


def run(model_name="llama-13b", trace=None, engine_config=None, store_config=None,
        warmup=0):
    model = get_model(model_name)
    engine = ServingEngine(
        model,
        engine_config=engine_config or EngineConfig(batch_size=8),
        store_config=store_config,
        warmup_turns=warmup,
    )
    result = engine.run(trace)
    return engine, result


@pytest.fixture(scope="module")
def trace():
    return generate_trace(n_sessions=60, seed=21)


@pytest.fixture(scope="module")
def ca_run(trace):
    return run(trace=trace)


@pytest.fixture(scope="module")
def re_run(trace):
    return run(trace=trace, engine_config=EngineConfig.recompute_baseline(batch_size=8))


class TestCompletion:
    def test_all_turns_served(self, trace, ca_run):
        _, result = ca_run
        assert result.summary.n_turns == trace.n_turns_total

    def test_re_serves_all_turns_too(self, trace, re_run):
        _, result = re_run
        assert result.summary.n_turns == trace.n_turns_total

    def test_sessions_all_finished(self, ca_run):
        engine, _ = ca_run
        assert all(s.finished for s in engine.sessions.values())

    def test_gpu_not_left_busy(self, ca_run):
        engine, _ = ca_run
        assert not engine._gpu_busy

    def test_queue_drained(self, ca_run):
        engine, _ = ca_run
        assert len(engine.queue) == 0
        assert len(engine.batch) == 0


class TestCachedAttentionBehaviour:
    def test_ca_hits_after_first_turn(self, ca_run):
        _, result = ca_run
        assert result.summary.hit_rate > 0.9

    def test_re_never_hits(self, re_run):
        _, result = re_run
        s = result.summary
        assert s.hits_dram == s.hits_disk == s.hits_hbm == 0

    def test_ca_reuses_tokens(self, ca_run):
        _, result = ca_run
        assert result.summary.reused_tokens_total > 0

    def test_re_recomputes_everything(self, re_run):
        _, result = re_run
        s = result.summary
        assert s.reused_tokens_total == 0
        assert s.new_tokens_total == s.prompt_tokens_total

    def test_ca_prefills_fewer_tokens(self, ca_run, re_run):
        assert (
            ca_run[1].summary.new_tokens_total
            < 0.35 * re_run[1].summary.new_tokens_total
        )

    def test_ca_faster_ttft(self, ca_run, re_run):
        assert ca_run[1].summary.mean_ttft < re_run[1].summary.mean_ttft

    def test_ca_higher_prefill_throughput(self, ca_run, re_run):
        assert (
            ca_run[1].summary.prefill_throughput
            > 1.5 * re_run[1].summary.prefill_throughput
        )

    def test_ca_less_gpu_time(self, ca_run, re_run):
        assert ca_run[1].summary.gpu_time < re_run[1].summary.gpu_time

    def test_first_turns_counted_separately(self, trace, ca_run):
        _, result = ca_run
        s = result.summary
        assert s.n_lookups == trace.n_turns_total - len(trace)

    def test_decode_work_similar(self, ca_run, re_run):
        """Decoding is the same workload in both modes."""
        ca_dec = ca_run[1].summary.decode_gpu_time
        re_dec = re_run[1].summary.decode_gpu_time
        assert ca_dec == pytest.approx(re_dec, rel=0.15)


class TestConsistencyInvariants:
    def test_prompt_token_conservation(self, ca_run):
        _, result = ca_run
        s = result.summary
        assert s.prompt_tokens_total == s.new_tokens_total + s.reused_tokens_total

    def test_ttft_equals_prefill_gpu_per_turn(self, ca_run):
        engine, _ = ca_run
        for record in engine.metrics.records:
            assert record.ttft == record.prefill_gpu_time

    def test_completion_after_prefill(self, ca_run):
        engine, _ = ca_run
        for record in engine.metrics.records:
            assert record.completion_time >= record.prefill_start + record.ttft

    def test_context_window_respected(self, ca_run):
        engine, _ = ca_run
        window = engine.model.context_window
        for record in engine.metrics.records:
            assert record.prompt_tokens <= window

    def test_gpu_busy_at_least_component_sum(self, ca_run):
        _, result = ca_run
        s = result.summary
        assert s.total_gpu_busy_time >= s.gpu_time * 0.99


class TestWarmup:
    def test_warmup_shrinks_eval_window(self, trace):
        _, result = run(trace=trace, warmup=50)
        assert result.summary.n_turns == trace.n_turns_total - 50


class TestTruncationModes:
    @pytest.fixture(scope="class")
    def overflow_trace(self):
        """Long sessions on a small-window model force overflow."""
        turns = tuple(
            Turn(q_tokens=300, a_tokens=400, think_time=0.0 if i == 0 else 5.0)
            for i in range(8)
        )
        convs = [Conversation(i, float(i), turns) for i in range(10)]
        return Trace(conversations=convs)

    def test_overflow_happens(self, overflow_trace):
        _, result = run(model_name="llama-65b", trace=overflow_trace)
        assert result.summary.overflow_dropped_tokens > 0

    def test_decoupled_truncation_keeps_hits(self, overflow_trace):
        _, decoupled = run(model_name="llama-65b", trace=overflow_trace)
        cfg = EngineConfig(
            batch_size=8, truncation=TruncationPolicyName.KV_EMBEDDED
        )
        _, embedded = run(
            model_name="llama-65b", trace=overflow_trace, engine_config=cfg
        )
        # Figure 22: embedded PE (OF) loses hits to invalidation.
        assert decoupled.summary.hit_rate > embedded.summary.hit_rate

    def test_embedded_invalidations_recorded(self, overflow_trace):
        cfg = EngineConfig(
            batch_size=8, truncation=TruncationPolicyName.KV_EMBEDDED
        )
        _, result = run(
            model_name="llama-65b", trace=overflow_trace, engine_config=cfg
        )
        assert result.store_stats.invalidated > 0


class TestStorePressure:
    def test_small_store_evicts_and_misses(self, trace):
        store = StoreConfig(dram_bytes=4 * GiB, ssd_bytes=16 * GiB)
        _, result = run(trace=trace, store_config=store)
        assert result.store_stats.evicted_out > 0
        assert result.summary.hit_rate < 1.0

    def test_bigger_store_hits_more(self, trace):
        small = StoreConfig(dram_bytes=4 * GiB, ssd_bytes=16 * GiB)
        large = StoreConfig(dram_bytes=64 * GiB, ssd_bytes=2 * TiB)
        _, r_small = run(trace=trace, store_config=small)
        _, r_large = run(trace=trace, store_config=large)
        assert r_large.summary.hit_rate >= r_small.summary.hit_rate

    def test_scheduler_aware_beats_lru_under_pressure(self, trace):
        """Figure 21's core claim at miniature scale."""
        base = dict(dram_bytes=4 * GiB, ssd_bytes=24 * GiB)
        _, sa = run(
            trace=trace,
            store_config=StoreConfig(
                policy=EvictionPolicyName.SCHEDULER_AWARE, **base
            ),
        )
        _, lru = run(
            trace=trace,
            store_config=StoreConfig(
                policy=EvictionPolicyName.LRU, enable_prefetch=False, **base
            ),
        )
        assert sa.summary.hit_rate >= lru.summary.hit_rate
        assert sa.summary.dram_hit_rate > lru.summary.dram_hit_rate


class TestAsyncSaveAblation:
    def test_sync_save_blocks_more(self, trace):
        async_cfg = EngineConfig(batch_size=8, enable_async_save=True)
        sync_cfg = EngineConfig(batch_size=8, enable_async_save=False)
        _, a = run(trace=trace, engine_config=async_cfg)
        _, s = run(trace=trace, engine_config=sync_cfg)
        assert a.summary.save_block_time < s.summary.save_block_time
        assert s.summary.save_block_time > 0


class TestPreloadAblation:
    def test_preload_cuts_hit_ttft(self, trace):
        on = EngineConfig(batch_size=8, enable_preload=True)
        off = EngineConfig(batch_size=8, enable_preload=False)
        _, r_on = run(trace=trace, engine_config=on)
        _, r_off = run(trace=trace, engine_config=off)
        assert r_on.summary.mean_ttft < r_off.summary.mean_ttft


class TestHBMOnlyCaching:
    def test_hbm_only_has_near_zero_hits(self, trace):
        """Figure 24: a 10 GB HBM cache is useless at session scale."""
        store = StoreConfig(
            dram_bytes=0, ssd_bytes=0, hbm_cache_bytes=10 * GiB
        )
        _, result = run(trace=trace, store_config=store)
        assert result.summary.hit_rate < 0.35

    def test_hbm_dram_ssd_ladder(self, trace):
        hbm_only = StoreConfig(dram_bytes=0, ssd_bytes=0, hbm_cache_bytes=10 * GiB)
        hbm_dram = StoreConfig(
            dram_bytes=32 * GiB, ssd_bytes=0, hbm_cache_bytes=10 * GiB
        )
        full = StoreConfig(
            dram_bytes=32 * GiB, ssd_bytes=2 * TiB, hbm_cache_bytes=10 * GiB
        )
        rates = []
        for cfg in (hbm_only, hbm_dram, full):
            _, result = run(trace=trace, store_config=cfg)
            rates.append(result.summary.hit_rate)
        assert rates[0] <= rates[1] <= rates[2]
        assert rates[2] > rates[0]
