"""Tests for the Sarathi-style chunked-prefill extension."""

import pytest

from repro.config import EngineConfig
from repro.engine import ServingEngine
from repro.models import get_model
from repro.workload import generate_trace
from repro.workload.trace import Conversation, Trace, Turn


def long_prompt_trace():
    """Big first-turn prompts arriving while others decode."""
    convs = [
        Conversation(i, float(i) * 0.5, (Turn(3000, 400), Turn(2000, 300, 5.0)))
        for i in range(8)
    ]
    return Trace(conversations=convs)


def run(chunk_tokens, trace=None):
    cfg = EngineConfig.recompute_baseline(
        batch_size=4, chunked_prefill_tokens=chunk_tokens
    )
    engine = ServingEngine(get_model("llama-13b"), engine_config=cfg)
    return engine.run(trace or long_prompt_trace())


class TestChunkedPrefill:
    def test_all_turns_complete(self):
        result = run(chunk_tokens=512)
        assert result.summary.n_turns == 16

    def test_same_prefill_gpu_time(self):
        """Chunking reschedules work; it does not change its amount."""
        whole = run(chunk_tokens=None)
        chunked = run(chunk_tokens=512)
        assert chunked.summary.prefill_gpu_time == pytest.approx(
            whole.summary.prefill_gpu_time, rel=1e-6
        )

    def test_max_decode_stall_shrinks(self):
        """The headline benefit: decoders are never blocked for a whole
        multi-thousand-token prefill."""
        whole = run(chunk_tokens=None)
        chunked = run(chunk_tokens=256)
        assert whole.summary.max_decode_stall > 0
        assert chunked.summary.max_decode_stall < 0.5 * whole.summary.max_decode_stall

    def test_stall_scales_with_chunk_size(self):
        fine = run(chunk_tokens=256)
        coarse = run(chunk_tokens=1024)
        assert fine.summary.max_decode_stall <= coarse.summary.max_decode_stall

    def test_results_unchanged_when_chunk_exceeds_prompts(self):
        trace = generate_trace(n_sessions=20, seed=8)
        whole = run(chunk_tokens=None, trace=trace)
        huge_chunk = run(chunk_tokens=10_000, trace=trace)
        assert huge_chunk.summary.mean_ttft == pytest.approx(
            whole.summary.mean_ttft
        )
        assert huge_chunk.summary.gpu_time == pytest.approx(
            whole.summary.gpu_time
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(chunked_prefill_tokens=0)

    def test_works_with_cached_attention(self):
        cfg = EngineConfig(batch_size=4, chunked_prefill_tokens=512)
        engine = ServingEngine(get_model("llama-13b"), engine_config=cfg)
        result = engine.run(long_prompt_trace())
        assert result.summary.n_turns == 16
        assert result.summary.hit_rate > 0.9
