"""Tests for the scheduler queue (the look-ahead oracle)."""

import pytest

from repro.engine import SchedulerQueue, TurnRequest


def req(sid, turn=0, q=10, a=10, arrival=0.0, gturn=0):
    return TurnRequest(
        session_id=sid,
        turn_index=turn,
        q_tokens=q,
        a_tokens=a,
        arrival_time=arrival,
        global_turn=gturn,
    )


class TestSchedulerQueue:
    def test_fifo_order(self):
        q = SchedulerQueue()
        q.push(req(1))
        q.push(req(2))
        assert q.pop().session_id == 1
        assert q.pop().session_id == 2

    def test_len_and_bool(self):
        q = SchedulerQueue()
        assert not q
        q.push(req(1))
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = SchedulerQueue()
        q.push(req(1))
        assert q.peek().session_id == 1
        assert len(q) == 1

    def test_peek_empty(self):
        assert SchedulerQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            SchedulerQueue().pop()

    def test_duplicate_session_rejected(self):
        q = SchedulerQueue()
        q.push(req(1))
        with pytest.raises(ValueError, match="already has a waiting job"):
            q.push(req(1, turn=1))

    def test_session_can_requeue_after_pop(self):
        q = SchedulerQueue()
        q.push(req(1))
        q.pop()
        q.push(req(1, turn=1))
        assert q.position(1) == 0

    def test_positions(self):
        q = SchedulerQueue()
        for sid in (5, 6, 7):
            q.push(req(sid))
        assert q.position(5) == 0
        assert q.position(7) == 2
        assert q.position(99) is None

    def test_positions_shift_on_pop(self):
        q = SchedulerQueue()
        for sid in (5, 6, 7):
            q.push(req(sid))
        q.pop()
        assert q.position(6) == 0
        assert q.position(7) == 1
        assert q.position(5) is None

    def test_head_window(self):
        q = SchedulerQueue()
        for sid in (1, 2, 3):
            q.push(req(sid))
        assert list(q.head_window(2)) == [1, 2]
        assert list(q.head_window(10)) == [1, 2, 3]

    def test_tail_window(self):
        q = SchedulerQueue()
        for sid in (1, 2, 3):
            q.push(req(sid))
        assert list(q.tail_window(2)) == [3, 2]

    def test_seq_assigned_on_push(self):
        q = SchedulerQueue()
        r = req(1)
        assert r.seq == -1
        q.push(r)
        assert r.seq >= 0


class TestTurnRequest:
    def test_first_turn(self):
        assert req(1, turn=0).is_first_turn
        assert not req(1, turn=3).is_first_turn

    def test_validation(self):
        with pytest.raises(ValueError):
            req(1, q=0)
        with pytest.raises(ValueError):
            req(1, a=0)
