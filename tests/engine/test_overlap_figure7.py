"""Figure 6/7 semantics of layer-wise pre-loading, checked structurally.

The paper's Figures 6-7 describe the pipeline qualitatively; these tests
pin the recurrence to those descriptions: per-layer gaps appear exactly
when per-layer load time exceeds per-layer compute time, the read buffer
removes gaps one layer at a time, and the buffer sizing formula
``S_buf = B (T_load L_hist - T_pref L_new)`` corresponds to the residual
the pipeline cannot hide.
"""

import pytest
from hypothesis import given, strategies as st

from repro.config import HardwareConfig
from repro.engine import (
    layerwise_prefill_time,
    no_preload_prefill_time,
    perfect_overlap_buffer_layers,
)
from repro.hardware import PerfModel
from repro.models import get_model


class TestFigure6and7Semantics:
    def test_figure6b_perfect_overlap_when_compute_dominates(self):
        """Figure 6b: with compute >= load per layer, only the first
        layer's load is exposed."""
        n_layers, compute, load = 8, 8.0, 4.0
        t = layerwise_prefill_time(n_layers, compute, load, buffer_layers=0)
        assert t == pytest.approx(compute + load / n_layers)

    def test_figure6c_read_buffer_hides_first_layer(self):
        """Figure 6c: a 1-layer read buffer removes even that first wait."""
        n_layers, compute, load = 8, 8.0, 4.0
        t = layerwise_prefill_time(n_layers, compute, load, buffer_layers=1)
        assert t == pytest.approx(compute)

    def test_figure7a_gaps_when_load_dominates(self):
        """Figure 7a: with load > compute per layer, the pipeline is
        drain-limited — total time tracks the load stream."""
        n_layers, compute, load = 8, 4.0, 8.0
        t = layerwise_prefill_time(n_layers, compute, load, buffer_layers=0)
        assert t == pytest.approx(load + compute / n_layers)
        # The exposed gap equals load - compute (minus the pipelining win).
        assert t - compute == pytest.approx(load - compute + compute / n_layers)

    def test_figure7b_buffer_closes_gaps_layer_by_layer(self):
        """Figure 7b: each buffered layer removes one layer's load from
        the critical path until compute dominates."""
        n_layers, compute, load = 8, 4.0, 8.0
        per_layer_load = load / n_layers
        times = [
            layerwise_prefill_time(n_layers, compute, load, b)
            for b in range(n_layers + 1)
        ]
        for b in range(len(times) - 1):
            drop = times[b] - times[b + 1]
            assert drop == pytest.approx(per_layer_load) or drop == pytest.approx(
                max(0.0, times[b] - compute)
            )
        assert times[-1] == pytest.approx(compute)

    def test_buffer_sizing_formula_matches_residual(self):
        """S_buf = B (T_load L_hist - T_pref L_new): the bytes needed to
        pre-stage exactly the load time the computation cannot cover."""
        pm = PerfModel(get_model("llama-13b"), HardwareConfig(num_gpus=1))
        hist, new, batch = 1000, 100, 16
        load = pm.kv_transfer_time(hist, pm.hardware.pcie_bandwidth, batch=batch)
        compute = pm.prefill_time(new, hist, batch=batch)
        buffer_bytes = pm.read_buffer_bytes(hist, new, batch=batch)
        # Dense-term compute is what the paper's formula uses.
        dense_compute = pm.prefill_time_per_token(batch) * new
        expected = pm.hardware.pcie_bandwidth * (load - dense_compute)
        assert buffer_bytes == pytest.approx(expected, rel=1e-6)
        # The residual is positive exactly in the imperfect-overlap regime.
        assert (buffer_bytes > 0) == (load > dense_compute)

    @given(
        st.integers(min_value=1, max_value=80),
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_perfect_buffer_is_minimal(self, n_layers, compute, load):
        """perfect_overlap_buffer_layers returns a buffer that achieves the
        compute-bound floor (within one layer's load)."""
        b = perfect_overlap_buffer_layers(n_layers, compute, load)
        t = layerwise_prefill_time(n_layers, compute, load, b)
        assert t <= compute + load / n_layers + 1e-9
