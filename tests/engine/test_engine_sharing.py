"""Cross-session KV sharing through the serving engine.

Prefix-bearing workloads (``shared_prefix_fraction > 0``) route through
the content-addressed shared block path: the first prefix-bearing
session to save registers the block, later sessions hit it — on turn 0
(the only outcome where a first turn reuses KV) and combined with their
private suffix on later turns.  A share-free workload must be untouched:
enabling sharing on it is bit-identical to disabling it.
"""

import pytest

from repro.config import EngineConfig, StoreConfig
from repro.engine import ServingEngine, TurnOutcome
from repro.models import GiB, get_model
from repro.obs import SpanTracer
from repro.workload import WorkloadSpec, generate_trace

PREFIX_TOKENS = 120


def sharing_trace(fraction=0.5, n_sessions=60, seed=21, n_prefixes=2):
    return generate_trace(
        WorkloadSpec(
            n_sessions=n_sessions,
            seed=seed,
            shared_prefix_fraction=fraction,
            shared_prefix_len=PREFIX_TOKENS if fraction else 0,
            n_shared_prefixes=n_prefixes,
        )
    )


def run(trace, store_config=None, tracer=None):
    engine = ServingEngine(
        get_model("llama-13b"),
        engine_config=EngineConfig(batch_size=8),
        store_config=store_config or StoreConfig(),
    )
    if tracer is not None:
        tracer.attach_engine(engine)
    result = engine.run(trace)
    return engine, result


@pytest.fixture(scope="module")
def shared_run():
    return run(sharing_trace())


class TestSharedServing:
    def test_all_turns_served(self, shared_run):
        _, result = shared_run
        assert result.summary.n_turns == sharing_trace().n_turns_total

    def test_shared_hits_happen(self, shared_run):
        _, result = shared_run
        assert result.summary.hits_shared > 0
        assert result.summary.shared_reused_tokens_total > 0

    def test_shared_hits_count_toward_hit_rate(self, shared_run):
        _, result = shared_run
        s = result.summary
        hits = s.hits_dram + s.hits_disk + s.hits_hbm + s.hits_shared
        assert s.n_lookups > 0
        assert s.hit_rate == pytest.approx(hits / s.n_lookups)

    def test_first_turns_can_hit(self, shared_run):
        """Turn 0 of a later prefix-bearing session reuses the block —
        the only outcome where a first turn reuses any KV."""
        engine, _ = shared_run
        first_turn_shared = [
            r
            for r in engine.metrics.records
            if r.turn_index == 0 and r.outcome is TurnOutcome.HIT_SHARED
        ]
        assert first_turn_shared
        assert all(
            0 < r.shared_hit_tokens <= PREFIX_TOKENS for r in first_turn_shared
        )

    def test_later_turns_combine_private_and_shared(self, shared_run):
        engine, _ = shared_run
        combined = [
            r
            for r in engine.metrics.records
            if r.turn_index > 0 and r.shared_hit_tokens > 0 and r.outcome.is_hit
        ]
        assert combined
        for r in combined:
            assert r.reused_tokens >= r.shared_hit_tokens

    def test_store_state_consistent(self, shared_run):
        engine, result = shared_run
        store = engine.store
        store.check_invariants()
        assert store.shared_block_count <= 2  # one block per template
        assert result.store_stats.shared_registered <= 2
        assert result.store_stats.shared_acquires > 0

    def test_suffix_only_saves(self, shared_run):
        """Prefix-bearing sessions save their suffix privately; the item
        is smaller than the session's full history by the prefix."""
        engine, _ = shared_run
        store = engine.store
        suffix_sessions = [
            s
            for s in engine.sessions.values()
            if s.shared_hash is not None
            and not s.shared_detached
            and store.get(s.session_id) is not None
        ]
        assert suffix_sessions
        for s in suffix_sessions:
            item = store.get(s.session_id)
            assert item.n_tokens <= s.history_tokens - s.conversation.shared_prefix_tokens


class TestSharingDisabled:
    def test_knob_off_means_no_shared_hits(self):
        _, result = run(
            sharing_trace(), store_config=StoreConfig(enable_sharing=False)
        )
        assert result.summary.hits_shared == 0
        assert result.store_stats.shared_registered == 0

    def test_hbm_mode_disables_sharing(self):
        """HBM caching saves the full history per session — incompatible
        with suffix-only items, so the shared path must stay off."""
        _, result = run(
            sharing_trace(),
            store_config=StoreConfig(hbm_cache_bytes=4 * GiB),
        )
        assert result.summary.hits_shared == 0


class TestShareFreeBitIdentity:
    def test_enable_sharing_is_inert_without_prefixes(self):
        """The acceptance criterion: a share-free workload runs
        bit-identically whether the sharing machinery is on or off."""
        trace = generate_trace(WorkloadSpec(n_sessions=40, seed=7))
        _, on = run(trace, store_config=StoreConfig(enable_sharing=True))
        _, off = run(trace, store_config=StoreConfig(enable_sharing=False))
        assert on.summary == off.summary
        assert on.events_processed == off.events_processed
        assert on.summary.hits_shared == 0


class TestDivergence:
    def test_truncation_detaches_sessions(self):
        """Context-window overflow truncates history: affected sessions
        diverge from the prefix for good and still serve every turn."""
        from dataclasses import replace

        model = replace(get_model("llama-13b"), context_window=512)
        trace = sharing_trace(n_sessions=40, seed=5)
        engine = ServingEngine(
            model,
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(),
        )
        result = engine.run(trace)
        assert result.summary.n_turns == trace.n_turns_total
        detached = [
            s
            for s in engine.sessions.values()
            if s.conversation.shared_prefix_tokens and s.shared_detached
        ]
        assert detached
        engine.store.check_invariants()


class TestSharedTracing:
    def test_shared_hit_spans_emitted(self):
        tracer = SpanTracer()
        run(sharing_trace(), tracer=tracer)
        names = {s.name for s in tracer.spans}
        assert "shared-hit" in names
