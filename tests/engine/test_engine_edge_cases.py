"""Edge-case and determinism tests for the serving engine."""

import pytest

from repro.config import (
    EngineConfig,
    GPUSpec,
    HardwareConfig,
    ServingMode,
    StoreConfig,
)
from repro.engine import ServingEngine, TurnOutcome
from repro.models import GiB, get_model
from repro.workload import generate_trace
from repro.workload.trace import Conversation, Trace, Turn


def single_turn_trace(n=5):
    return Trace(
        conversations=[
            Conversation(i, float(i), (Turn(50, 60),)) for i in range(n)
        ]
    )


class TestDegenerateWorkloads:
    def test_single_session_single_turn(self):
        trace = Trace(conversations=[Conversation(0, 0.0, (Turn(10, 10),))])
        engine = ServingEngine(get_model("llama-13b"))
        result = engine.run(trace)
        assert result.summary.n_turns == 1
        assert result.summary.n_lookups == 0
        record = engine.metrics.records[0]
        assert record.outcome is TurnOutcome.FIRST_TURN

    def test_all_single_turn_sessions_never_lookup(self):
        engine = ServingEngine(get_model("llama-13b"))
        result = engine.run(single_turn_trace())
        assert result.summary.n_lookups == 0
        assert result.summary.hit_rate == 0.0

    def test_empty_trace_rejected(self):
        engine = ServingEngine(get_model("llama-13b"))
        with pytest.raises(ValueError, match="empty"):
            engine.run(Trace())

    def test_simultaneous_arrivals(self):
        trace = Trace(
            conversations=[Conversation(i, 0.0, (Turn(10, 10),)) for i in range(6)]
        )
        engine = ServingEngine(
            get_model("llama-13b"), engine_config=EngineConfig(batch_size=2)
        )
        result = engine.run(trace)
        assert result.summary.n_turns == 6

    def test_batch_size_one(self):
        engine = ServingEngine(
            get_model("llama-13b"), engine_config=EngineConfig(batch_size=1)
        )
        result = engine.run(single_turn_trace())
        assert result.summary.n_turns == 5

    def test_question_longer_than_window(self):
        """An oversized prompt is clamped to the context window."""
        model = get_model("llama-65b")  # 2K window
        trace = Trace(
            conversations=[Conversation(0, 0.0, (Turn(4000, 10),))]
        )
        engine = ServingEngine(model)
        result = engine.run(trace)
        record = engine.metrics.records[0]
        assert record.prompt_tokens == model.context_window
        assert record.generated_tokens == 1  # no room to decode


class TestDeterminism:
    def test_same_trace_same_results(self):
        trace = generate_trace(n_sessions=40, seed=3)
        results = []
        for _ in range(2):
            engine = ServingEngine(
                get_model("llama-13b"), engine_config=EngineConfig(batch_size=8)
            )
            results.append(engine.run(trace))
        a, b = (r.summary for r in results)
        assert a.mean_ttft == b.mean_ttft
        assert a.gpu_time == b.gpu_time
        assert a.hit_rate == b.hit_rate
        assert results[0].events_processed == results[1].events_processed


class TestHBMPressure:
    def test_tiny_hbm_limits_batch_but_completes(self):
        """With barely more HBM than the weights, admission throttles but
        every turn is still served."""
        model = get_model("llama-13b")
        hardware = HardwareConfig(
            num_gpus=2,
            gpu=GPUSpec(hbm_bytes=16 * GiB),  # 32 GiB total, 26 for weights
        )
        engine = ServingEngine(
            model, hardware=hardware, engine_config=EngineConfig(batch_size=8)
        )
        trace = generate_trace(n_sessions=20, seed=4)
        result = engine.run(trace)
        assert result.summary.n_turns == trace.n_turns_total

    def test_model_must_fit(self):
        hardware = HardwareConfig(num_gpus=1, gpu=GPUSpec(hbm_bytes=8 * GiB))
        with pytest.raises(ValueError, match="does not fit"):
            ServingEngine(get_model("llama-13b"), hardware=hardware)


class TestModeWiring:
    def test_re_has_no_store(self):
        engine = ServingEngine(
            get_model("llama-13b"),
            engine_config=EngineConfig.recompute_baseline(),
        )
        assert engine.store is None
        result = engine.run(single_turn_trace())
        assert result.store_stats is None
        assert result.mode is ServingMode.RECOMPUTE
        assert not result.is_cached

    def test_ca_reports_store_stats(self):
        engine = ServingEngine(get_model("llama-13b"))
        result = engine.run(single_turn_trace())
        assert result.store_stats is not None
        assert result.store_stats.saves == 5
        assert result.is_cached

    def test_default_engine_config_uses_model_batch(self):
        engine = ServingEngine(get_model("llama-13b"))
        assert engine.config.batch_size == 24

    def test_pcie_traffic_only_in_ca(self):
        ca = ServingEngine(get_model("llama-13b"))
        ca_result = ca.run(single_turn_trace())
        re = ServingEngine(
            get_model("llama-13b"),
            engine_config=EngineConfig.recompute_baseline(),
        )
        re_result = re.run(single_turn_trace())
        assert ca_result.pcie_bytes > 0  # saves cross PCIe
        assert re_result.pcie_bytes == 0
