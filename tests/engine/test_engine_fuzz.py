"""Property-based fuzzing of the serving engine.

Arbitrary miniature workloads must always run to completion with coherent
accounting, in every serving mode and store configuration.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import EngineConfig, EvictionPolicyName, StoreConfig
from repro.engine import ServingEngine
from repro.models import GiB, get_model
from repro.workload.trace import Conversation, Trace, Turn

turn_strategy = st.builds(
    Turn,
    q_tokens=st.integers(min_value=1, max_value=3000),
    a_tokens=st.integers(min_value=1, max_value=1500),
    think_time=st.floats(min_value=0.0, max_value=120.0),
)


@st.composite
def trace_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    conversations = []
    for sid in range(n):
        turns = draw(st.lists(turn_strategy, min_size=1, max_size=5))
        arrival = draw(st.floats(min_value=0.0, max_value=60.0))
        conversations.append(
            Conversation(sid, arrival, tuple(turns))
        )
    return Trace(conversations=conversations)


def run_and_check(trace, engine_config, store_config=None, model_name="llama-13b"):
    model = get_model(model_name)
    engine = ServingEngine(
        model, engine_config=engine_config, store_config=store_config
    )
    result = engine.run(trace)
    summary = result.summary

    # Completion invariants.
    assert summary.n_turns == trace.n_turns_total
    assert all(s.finished for s in engine.sessions.values())
    assert not engine._gpu_busy
    assert len(engine.queue) == 0 and len(engine.batch) == 0
    assert engine._hbm_reserved_tokens == 0

    # Accounting invariants.
    assert summary.prompt_tokens_total == (
        summary.new_tokens_total + summary.reused_tokens_total
    )
    assert summary.n_lookups == trace.n_turns_total - len(trace)
    for record in engine.metrics.records:
        assert record.prompt_tokens <= model.context_window
        assert record.generated_tokens >= 1
        assert record.ttft >= 0
        assert record.completion_time >= record.prefill_start
    assert summary.total_gpu_busy_time >= 0
    return result


class TestEngineFuzz:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace_strategy())
    def test_cached_mode(self, trace):
        run_and_check(trace, EngineConfig(batch_size=4))

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace_strategy())
    def test_recompute_mode(self, trace):
        result = run_and_check(
            trace, EngineConfig.recompute_baseline(batch_size=4)
        )
        assert result.summary.reused_tokens_total == 0

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        trace_strategy(),
        st.sampled_from(list(EvictionPolicyName)),
        st.booleans(),
    )
    def test_tight_store(self, trace, policy, prefetch):
        store = StoreConfig(
            dram_bytes=2 * GiB,
            ssd_bytes=6 * GiB,
            policy=policy,
            enable_prefetch=prefetch,
        )
        run_and_check(trace, EngineConfig(batch_size=2), store_config=store)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(trace_strategy())
    def test_small_window_model(self, trace):
        """LLaMA-65B's 2K window forces truncation on most prompts."""
        run_and_check(
            trace, EngineConfig(batch_size=2), model_name="llama-65b"
        )
