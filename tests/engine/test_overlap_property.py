"""Property test: the O(1) closed-form layer-wise prefill time agrees with
the O(L) per-layer pipeline recurrence it replaced.

Agreement is checked to within a relative tolerance of 1e-12: the
reference accumulates ``L`` additions of ``c = compute_time / L`` while the
closed form multiplies once, so the two legitimately differ in the last
couple of ulps (about ``L * eps`` relative, ~2e-14 for L = 80).  Anything
beyond that tolerance is a real disagreement between the derivation and
the pipeline.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import layerwise_prefill_time, layerwise_prefill_time_reference

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=500, deadline=None)
@given(
    n_layers=st.integers(min_value=1, max_value=160),
    compute_time=times,
    load_time=times,
    buffer_layers=st.integers(min_value=0, max_value=200),
)
def test_closed_form_matches_reference(
    n_layers, compute_time, load_time, buffer_layers
):
    closed = layerwise_prefill_time(n_layers, compute_time, load_time, buffer_layers)
    reference = layerwise_prefill_time_reference(
        n_layers, compute_time, load_time, buffer_layers
    )
    assert math.isclose(closed, reference, rel_tol=1e-12, abs_tol=1e-15), (
        f"closed={closed!r} reference={reference!r} for "
        f"L={n_layers} c={compute_time!r} d={load_time!r} B={buffer_layers}"
    )


@given(
    n_layers=st.integers(min_value=1, max_value=160),
    compute_time=times,
    load_time=times,
)
def test_full_buffer_is_pure_compute(n_layers, compute_time, load_time):
    assert layerwise_prefill_time(
        n_layers, compute_time, load_time, buffer_layers=n_layers
    ) == n_layers * (compute_time / n_layers)


@given(
    n_layers=st.integers(min_value=1, max_value=160),
    compute_time=times,
    load_time=times,
    buffer_layers=st.integers(min_value=0, max_value=200),
)
def test_bounded_by_no_overlap_and_compute(
    n_layers, compute_time, load_time, buffer_layers
):
    duration = layerwise_prefill_time(
        n_layers, compute_time, load_time, buffer_layers
    )
    # Never better than pure compute, never worse than serial load+compute
    # (modulo float noise on the boundaries; the absolute slack covers
    # subnormal inputs where c = compute_time / L underflows).
    assert duration >= compute_time * (1 - 1e-12) - 1e-300
    assert duration <= (compute_time + load_time) * (1 + 1e-12) + 1e-300
