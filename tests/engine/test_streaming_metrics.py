"""Streaming metrics agree with the exact collector.

The contract (DESIGN.md Section 8): every counter and float sum in
:class:`RunSummary` is *bit-identical* between modes — the streaming
collector adds the same values in the same order — and only ``p95_ttft``
is an estimate, bounded by the log-histogram's documented relative error.
"""

import dataclasses
import random

import pytest

from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.engine import ServingEngine
from repro.engine.metrics import MetricsCollector, TurnOutcome, TurnRecord
from repro.engine.streaming import LogHistogramQuantile
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

P95_FIELD = "p95_ttft"


def _random_record(rng: random.Random, global_turn: int) -> TurnRecord:
    ttft = rng.lognormvariate(-2.0, 1.5)
    arrival = rng.uniform(0, 1000)
    return TurnRecord(
        session_id=rng.randrange(100),
        turn_index=rng.randrange(10),
        global_turn=global_turn,
        outcome=rng.choice(list(TurnOutcome)),
        arrival_time=arrival,
        prefill_start=arrival + rng.uniform(0, 5),
        prompt_tokens=rng.randrange(1, 4000),
        new_tokens=rng.randrange(1, 500),
        reused_tokens=rng.randrange(0, 3500),
        generated_tokens=rng.randrange(1, 500),
        ttft=ttft,
        prefill_gpu_time=ttft * rng.uniform(0.5, 1.0),
        decode_gpu_share=rng.uniform(0, 2),
        save_block_time=rng.uniform(0, 0.05),
        completion_time=arrival + rng.uniform(5, 60),
        dropped_tokens=rng.randrange(0, 100),
    )


def _assert_summaries_agree(exact, streaming, rel_tol):
    for field in dataclasses.fields(exact):
        exact_value = getattr(exact, field.name)
        streaming_value = getattr(streaming, field.name)
        if field.name == P95_FIELD:
            assert streaming_value == pytest.approx(exact_value, rel=rel_tol)
        else:
            # Bit-identical: same values summed in the same order.
            assert streaming_value == exact_value, field.name


class TestStreamingCollector:
    @pytest.mark.parametrize("warmup", [0, 137])
    def test_agrees_with_exact_on_synthetic_records(self, warmup):
        rng = random.Random(7)
        records = [_random_record(rng, i) for i in range(2000)]
        exact = MetricsCollector(warmup_turns=warmup)
        stream = MetricsCollector(warmup_turns=warmup, streaming=True)
        for record in records:
            exact.record_turn(dataclasses.replace(record))
            stream.record_turn(dataclasses.replace(record))
        exact.record_gpu_busy(123.4)
        stream.record_gpu_busy(123.4)
        exact.record_decode_stall(0.5)
        stream.record_decode_stall(0.5)
        _assert_summaries_agree(
            exact.summarise(),
            stream.summarise(),
            rel_tol=stream._ttft_hist.relative_error,
        )

    def test_empty_run(self):
        exact = MetricsCollector().summarise()
        stream = MetricsCollector(streaming=True).summarise()
        assert exact == stream

    def test_streaming_retains_no_records(self):
        stream = MetricsCollector(streaming=True)
        rng = random.Random(1)
        for i in range(500):
            stream.record_turn(_random_record(rng, i))
        assert stream.records == []
        assert stream.summarise().n_turns == 500

    def test_agrees_on_real_serving_run(self):
        model = get_model("llama-13b")
        trace = generate_trace(WorkloadSpec(n_sessions=60, seed=11))

        def run(streaming: bool):
            engine = ServingEngine(
                model,
                hardware=HardwareConfig().for_model(model),
                engine_config=EngineConfig(batch_size=model.default_batch_size),
                store_config=StoreConfig(),
                warmup_turns=40,
                streaming_metrics=streaming,
            )
            return engine.run(trace)

        exact = run(False)
        stream = run(True)
        # ISSUE tolerance: p95 within 2 %; the histogram's own bound is
        # tighter (~0.5 %).
        _assert_summaries_agree(exact.summary, stream.summary, rel_tol=0.02)
        assert stream.store_stats == exact.store_stats
        assert stream.events_processed == exact.events_processed

    def test_merged_streaming_collectors(self):
        rng = random.Random(3)
        parts = []
        all_records = []
        for _ in range(3):
            collector = MetricsCollector(streaming=True)
            for i in range(400):
                record = _random_record(rng, i)
                all_records.append(dataclasses.replace(record))
                collector.record_turn(record)
            collector.record_gpu_busy(10.0)
            parts.append(collector)
        merged = MetricsCollector.merged(parts).summarise()
        reference = MetricsCollector(streaming=True)
        for record in all_records:
            reference.record_turn(record)
        reference.record_gpu_busy(30.0)
        expected = reference.summarise()
        assert merged.n_turns == expected.n_turns
        assert merged.prompt_tokens_total == expected.prompt_tokens_total
        # Histogram merge is exact (bin counts add).
        assert merged.p95_ttft == expected.p95_ttft
        assert merged.mean_ttft == pytest.approx(expected.mean_ttft)

    def test_merging_mixed_modes_rejected(self):
        with pytest.raises(ValueError, match="streaming"):
            MetricsCollector.merged(
                [MetricsCollector(), MetricsCollector(streaming=True)]
            )

    def test_mixed_mode_error_names_the_split(self):
        """The message must be actionable: how many of each mode, and how
        to fix it (same streaming_metrics flag everywhere)."""
        with pytest.raises(
            ValueError,
            match=r"1 streaming and 2 exact of 3.*streaming_metrics",
        ):
            MetricsCollector.merged(
                [
                    MetricsCollector(),
                    MetricsCollector(streaming=True),
                    MetricsCollector(),
                ]
            )


class TestLogHistogramQuantile:
    def test_quantile_within_documented_error(self):
        rng = random.Random(5)
        hist = LogHistogramQuantile()
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(20_000)]
        for v in values:
            hist.add(v)
        ordered = sorted(values)
        n = len(ordered)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = ordered[min(n - 1, int(q * n))]
            assert hist.quantile(q) == pytest.approx(
                exact, rel=hist.relative_error
            )

    def test_merge_equals_single_pass(self):
        rng = random.Random(9)
        values = [rng.expovariate(1.0) for _ in range(5000)]
        whole = LogHistogramQuantile()
        left, right = LogHistogramQuantile(), LogHistogramQuantile()
        for i, v in enumerate(values):
            whole.add(v)
            (left if i % 2 else right).add(v)
        left.merge(right)
        assert len(left) == len(whole)
        for q in (0.1, 0.5, 0.95):
            assert left.quantile(q) == whole.quantile(q)

    def test_underflow_bin(self):
        hist = LogHistogramQuantile(min_value=1e-6)
        hist.add(0.0)
        hist.add(1e-9)
        assert hist.quantile(0.5) == 1e-6

    def test_memory_stays_bounded(self):
        rng = random.Random(2)
        hist = LogHistogramQuantile()
        for _ in range(50_000):
            hist.add(rng.lognormvariate(-2.0, 1.5))
        # Occupied bins are bounded by the support's log-width, not N.
        assert len(hist._counts) < 3000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogHistogramQuantile(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogramQuantile(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogramQuantile().quantile(1.5)
