"""Router unit tests: routing decisions from explicit load vectors."""

import pytest

from repro.cluster import (
    AffinityRouter,
    ClusterConfig,
    LeastLoadedRouter,
    Router,
    RouterName,
    RoundRobinRouter,
    make_router,
)


class StubEngine:
    """Just enough of a ServingEngine for routing: a load signal."""

    def __init__(self, load_tokens):
        self.load_tokens = load_tokens


def engines(*loads):
    return [StubEngine(load) for load in loads]


class TestRoundRobin:
    def test_strict_rotation(self):
        router = RoundRobinRouter(engines(0, 0, 0))
        picks = [router.route(session_id=9, home=None) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_home_and_load(self):
        router = RoundRobinRouter(engines(10_000, 0))
        assert router.route(1, home=1) == 0
        assert router.route(1, home=1) == 1


class TestLeastLoaded:
    def test_picks_minimum_load(self):
        router = LeastLoadedRouter(engines(500, 20, 300))
        assert router.route(1, home=0) == 1

    def test_ties_break_to_lowest_index(self):
        router = LeastLoadedRouter(engines(50, 50, 50))
        assert router.route(1, home=2) == 0


class TestAffinity:
    def test_new_session_goes_least_loaded(self):
        router = AffinityRouter(engines(100, 10, 200))
        assert router.route(1, home=None) == 1

    def test_returning_session_stays_home(self):
        router = AffinityRouter(engines(100, 10, 200), spill_tokens=1000)
        assert router.route(1, home=2) == 2

    def test_spills_when_home_overloaded(self):
        router = AffinityRouter(engines(5000, 10), spill_tokens=1000)
        assert router.route(1, home=0) == 1

    def test_spill_threshold_is_strict(self):
        router = AffinityRouter(engines(1010, 10), spill_tokens=1000)
        # imbalance == threshold: stay home (locality wins ties)
        assert router.route(1, home=0) == 0
        router = AffinityRouter(engines(1011, 10), spill_tokens=1000)
        assert router.route(1, home=0) == 1

    def test_rejects_negative_spill(self):
        with pytest.raises(ValueError):
            AffinityRouter(engines(0), spill_tokens=-1)


class TestMakeRouter:
    @pytest.mark.parametrize(
        "name, cls",
        [
            (RouterName.ROUND_ROBIN, RoundRobinRouter),
            (RouterName.LEAST_LOADED, LeastLoadedRouter),
            (RouterName.AFFINITY, AffinityRouter),
        ],
    )
    def test_builds_named_router(self, name, cls):
        router = make_router(name, engines(0, 0))
        assert isinstance(router, cls)
        assert isinstance(router, Router)
        assert router.name is name

    def test_spill_tokens_forwarded(self):
        router = make_router(RouterName.AFFINITY, engines(0), spill_tokens=7)
        assert router.spill_tokens == 7

    def test_empty_replica_list_rejected(self):
        with pytest.raises(ValueError):
            make_router(RouterName.ROUND_ROBIN, [])


class TestClusterConfigValidation:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.n_instances == 1
        assert config.router is RouterName.AFFINITY

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_instances": 0},
            {"net_bandwidth": 0.0},
            {"affinity_spill_tokens": -5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)
