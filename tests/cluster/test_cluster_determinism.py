"""Cluster determinism and single-instance equivalence.

Two guarantees:

* the same trace and configuration produce bit-identical cluster results
  (the shared simulator breaks timestamp ties by insertion order, and every
  router tie-breaks by lowest replica index);
* a one-instance cluster is bit-identical to a standalone
  :class:`ServingEngine` under *every* router — the cluster layer adds no
  behaviour until there is more than one replica.
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, HardwareConfig, ServingMode, StoreConfig
from repro.engine import ServingEngine
from repro.faults import fault_profile
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace


def make_trace(n_sessions=120, rate=4.0, seed=31):
    return generate_trace(
        WorkloadSpec(n_sessions=n_sessions, arrival_rate=rate, seed=seed)
    )


def cluster_snapshot(result):
    return (
        dataclasses.asdict(result.summary),
        [dataclasses.asdict(r.summary) for r in result.replicas],
        [
            dataclasses.asdict(r.store_stats)
            for r in result.replicas
            if r.store_stats is not None
        ],
        result.migrations,
        result.migrated_bytes,
        result.scatter_drops,
        result.net_bytes,
        result.events_processed,
    )


def run_cluster(trace, router, n_instances=4, fault_config=None):
    engine = ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(n_instances=n_instances, router=router),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
        fault_config=fault_config,
    )
    return engine.run(trace)


class TestClusterDeterminism:
    @pytest.mark.parametrize("router", list(RouterName))
    def test_same_config_same_results(self, router):
        trace = make_trace()
        a = cluster_snapshot(run_cluster(trace, router))
        b = cluster_snapshot(run_cluster(trace, router))
        assert a == b

    def test_deterministic_under_fault_injection(self):
        trace = make_trace(n_sessions=60)
        faults = fault_profile("chaos", seed=5)
        a = cluster_snapshot(
            run_cluster(trace, RouterName.AFFINITY, fault_config=faults)
        )
        b = cluster_snapshot(
            run_cluster(trace, RouterName.AFFINITY, fault_config=faults)
        )
        assert a == b

    def test_replica_fault_streams_are_independent(self):
        trace = make_trace(n_sessions=60)
        result = run_cluster(
            trace, RouterName.ROUND_ROBIN, fault_config=fault_profile("chaos", seed=5)
        )
        fault_counts = [
            r.store_stats.transfer_faults + r.store_stats.corrupt_misses
            for r in result.replicas
        ]
        # Same seed on every replica would produce identical streams; the
        # per-replica seed offset must decorrelate them.
        assert len(set(fault_counts)) > 1


class TestSingleInstanceEquivalence:
    @pytest.fixture(scope="class")
    def trace(self):
        return make_trace(n_sessions=80, rate=1.0)

    def single_result(self, trace, mode):
        model = get_model("llama-13b")
        if mode is ServingMode.RECOMPUTE:
            config = EngineConfig.recompute_baseline(batch_size=8)
            store = None
        else:
            config = EngineConfig(batch_size=8)
            store = StoreConfig()
        engine = ServingEngine(
            model,
            hardware=HardwareConfig().for_model(model),
            engine_config=config,
            store_config=store,
        )
        return engine.run(trace)

    @pytest.mark.parametrize("router", list(RouterName))
    def test_cached_mode_bit_identical(self, trace, router):
        reference = self.single_result(trace, ServingMode.CACHED)
        result = run_cluster(trace, router, n_instances=1)
        assert dataclasses.asdict(result.summary) == dataclasses.asdict(
            reference.summary
        )
        (replica,) = result.replicas
        assert dataclasses.asdict(replica.store_stats) == dataclasses.asdict(
            reference.store_stats
        )
        assert replica.pcie_bytes == reference.pcie_bytes
        assert replica.ssd_bytes == reference.ssd_bytes
        assert result.migrations == 0
        assert result.scatter_drops == 0
        assert result.net_bytes == 0

    def test_recompute_mode_bit_identical(self, trace):
        reference = self.single_result(trace, ServingMode.RECOMPUTE)
        model = get_model("llama-13b")
        engine = ClusterEngine(
            model,
            cluster=ClusterConfig(n_instances=1),
            hardware=HardwareConfig().for_model(model),
            engine_config=EngineConfig.recompute_baseline(batch_size=8),
        )
        result = engine.run(trace)
        assert dataclasses.asdict(result.summary) == dataclasses.asdict(
            reference.summary
        )
