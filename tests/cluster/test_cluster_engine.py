"""Cluster serving behaviour: routing policies, KV placement, migration."""

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, ServingMode, StoreConfig
from repro.models import GiB, get_model
from repro.store.item import Tier
from repro.workload import WorkloadSpec, generate_trace


def cluster_trace(n_sessions=160, rate=4.0, seed=7):
    return generate_trace(
        WorkloadSpec(n_sessions=n_sessions, arrival_rate=rate, seed=seed)
    )


def run_cluster(router, n_instances=4, trace=None, **cluster_kwargs):
    engine = ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(
            n_instances=n_instances, router=router, **cluster_kwargs
        ),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
    )
    result = engine.run(trace if trace is not None else cluster_trace())
    return engine, result


class TestStorePartitioning:
    def test_capacity_is_sharded(self):
        engine, _ = run_cluster(RouterName.AFFINITY, trace=cluster_trace(20))
        base = StoreConfig()
        for replica in engine.engines:
            assert replica.store is not None
            assert replica.store.config.dram_bytes == base.dram_bytes // 4
            assert replica.store.config.ssd_bytes == base.ssd_bytes // 4

    def test_single_instance_keeps_full_capacity(self):
        engine = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=1),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(dram_bytes=32 * GiB),
        )
        assert engine.engines[0].store.config.dram_bytes == 32 * GiB

    def test_partitioning_can_be_disabled(self):
        engine = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=4, partition_store=False),
            engine_config=EngineConfig(batch_size=8),
            store_config=StoreConfig(dram_bytes=32 * GiB),
        )
        for replica in engine.engines:
            assert replica.store.config.dram_bytes == 32 * GiB


class TestRoutingPolicies:
    def test_affinity_preserves_hit_rate(self):
        _, affinity = run_cluster(RouterName.AFFINITY)
        _, rr = run_cluster(RouterName.ROUND_ROBIN)
        assert affinity.hit_rate > 0.9
        assert rr.hit_rate < affinity.hit_rate - 0.2

    def test_scatter_routers_drop_stale_copies(self):
        _, rr = run_cluster(RouterName.ROUND_ROBIN)
        assert rr.scatter_drops > 0
        assert rr.migrations == 0
        assert rr.net_bytes == 0

    def test_affinity_never_scatter_drops(self):
        _, result = run_cluster(RouterName.AFFINITY)
        assert result.scatter_drops == 0

    def test_affinity_spill_migrates_kv(self):
        # A zero spill threshold forces a migration whenever the home
        # replica is even slightly busier than the cluster minimum.
        _, result = run_cluster(
            RouterName.AFFINITY, affinity_spill_tokens=0
        )
        assert result.migrations > 0
        assert result.migrated_bytes > 0
        assert result.net_bytes >= result.migrated_bytes

    def test_all_turns_served_once(self):
        trace = cluster_trace()
        for router in RouterName:
            _, result = run_cluster(router, trace=trace)
            assert result.summary.n_turns == trace.n_turns_total


class TestKVPlacementInvariants:
    @pytest.mark.parametrize("router", list(RouterName))
    def test_at_most_one_copy_per_session(self, router):
        engine, _ = run_cluster(router)
        for replica in engine.engines:
            replica.store.check_invariants()
        homes = {}
        for index, replica in enumerate(engine.engines):
            for session_id in list(replica.store._items):
                assert session_id not in homes, (
                    f"session {session_id} cached on replicas "
                    f"{homes[session_id]} and {index}"
                )
                homes[session_id] = index

    def test_migrated_item_waits_for_transfer(self):
        engine, _ = run_cluster(RouterName.AFFINITY, trace=cluster_trace(20))
        source, target = engine.engines[0], engine.engines[1]
        item = source.store.save(999, 1000, now=0.0)
        assert item is not None
        extracted = source.store.extract(999)
        assert extracted is not None
        assert extracted.tier is Tier.DRAM
        admitted = target.store.admit_migrated(
            999, extracted.n_tokens, now=0.0, ready_at=42.0
        )
        assert admitted is not None
        assert admitted.dram_ready_at == 42.0
        assert target.store.lookup(999, now=1.0).ready_at == 42.0
        assert source.store.get(999) is None
        assert source.store.stats.migrations_out == 1
        assert target.store.stats.migrations_in == 1

    def test_extract_refuses_corrupt_items(self):
        engine, _ = run_cluster(RouterName.AFFINITY, trace=cluster_trace(20))
        store = engine.engines[0].store
        item = store.save(998, 500, now=0.0)
        item.corrupt = True
        assert store.extract(998) is None
        assert store.get(998) is None
        assert store.stats.migrations_out == 0


class TestRecomputeMode:
    def test_cluster_serves_without_store(self):
        engine = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=2, router=RouterName.LEAST_LOADED),
            engine_config=EngineConfig.recompute_baseline(batch_size=8),
        )
        result = engine.run(cluster_trace(40, rate=2.0))
        assert result.summary.n_turns > 0
        assert result.migrations == 0
        assert all(r.store_stats is None for r in result.replicas)
        assert result.replicas[0].mode is ServingMode.RECOMPUTE


class TestValidation:
    def test_empty_trace_rejected(self):
        engine = ClusterEngine(
            get_model("llama-13b"),
            cluster=ClusterConfig(n_instances=2),
            engine_config=EngineConfig(batch_size=8),
        )
        with pytest.raises(ValueError):
            engine.run(generate_trace(WorkloadSpec(n_sessions=1, seed=1)).__class__())
