"""Faults firing *during* cluster KV migration (``net_fault_rate``).

The inter-host link gets its own fault injector: a migrating copy can be
lost in transit.  The extracting side already removed the item, so the
loss must degrade gracefully — the next turn recomputes its history at
the target — while the exactly-one-copy invariant holds throughout (no
replica may end up with a duplicate or resurrect the lost copy).
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, StoreConfig
from repro.faults import FaultConfig, ReplicaDrain, ReplicaFaultSchedule
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace


def cluster_trace(n_sessions=120, rate=4.0, seed=7):
    return generate_trace(
        WorkloadSpec(n_sessions=n_sessions, arrival_rate=rate, seed=seed)
    )


def run_faulty(
    router,
    *,
    net_fault_rate,
    trace=None,
    n_instances=4,
    schedule=None,
    sanitize=None,
    **cluster_kwargs,
):
    engine = ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(
            n_instances=n_instances, router=router, **cluster_kwargs
        ),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
        fault_config=FaultConfig(
            seed=3, net_fault_rate=net_fault_rate, replica_schedule=schedule
        ),
        sanitize=sanitize,
    )
    result = engine.run(trace if trace is not None else cluster_trace())
    return engine, result


def assert_one_copy(engine):
    holders = {}
    for index, replica in enumerate(engine.engines):
        replica.store.check_invariants()
        for session_id in replica.store.resident_sessions():
            assert session_id not in holders, (
                f"session {session_id} cached on replicas "
                f"{holders[session_id]} and {index}"
            )
            holders[session_id] = index


class TestMigrationLoss:
    def test_lost_migrations_degrade_to_recompute(self):
        trace = cluster_trace()
        engine, result = run_faulty(
            RouterName.AFFINITY,
            net_fault_rate=0.5,
            trace=trace,
            affinity_spill_tokens=0,
            sanitize=True,
        )
        faults = sum(
            e.store.stats.transfer_faults for e in engine.engines
        )
        assert faults > 0
        # Every turn is still served: lost history recomputes.
        assert result.summary.n_turns == trace.n_turns_total
        assert result.summary.fallbacks + result.summary.misses > 0
        assert_one_copy(engine)

    def test_net_faults_fire_during_drain_migration(self):
        trace = cluster_trace()
        schedule = ReplicaFaultSchedule(
            drains=(ReplicaDrain(at=60.0, replica=0),)
        )
        engine, result = run_faulty(
            RouterName.AFFINITY,
            net_fault_rate=0.5,
            trace=trace,
            schedule=schedule,
            sanitize=True,
        )
        assert result.summary.n_turns == trace.n_turns_total
        assert result.drains == 1
        # The drained replica kept nothing, lost copies included.
        assert len(engine.engines[0].store) == 0
        assert_one_copy(engine)

    def test_zero_rate_builds_no_injector(self):
        engine, _ = run_faulty(
            RouterName.AFFINITY, net_fault_rate=0.0, trace=cluster_trace(20)
        )
        assert engine.net_faults is None
        assert engine.net.fault_hook is None

    def test_faulty_runs_are_deterministic(self):
        def snapshot(result):
            return (
                dataclasses.asdict(result.summary),
                [
                    dataclasses.asdict(r.store_stats)
                    for r in result.replicas
                    if r.store_stats is not None
                ],
                result.migrations,
                result.events_processed,
            )

        a = run_faulty(
            RouterName.AFFINITY,
            net_fault_rate=0.3,
            trace=cluster_trace(),
            affinity_spill_tokens=0,
        )[1]
        b = run_faulty(
            RouterName.AFFINITY,
            net_fault_rate=0.3,
            trace=cluster_trace(),
            affinity_spill_tokens=0,
        )[1]
        assert snapshot(a) == snapshot(b)


class TestScatterRoutersUnderFaults:
    @pytest.mark.parametrize(
        "router", [RouterName.ROUND_ROBIN, RouterName.LEAST_LOADED]
    )
    def test_oblivious_routers_still_drop_stale_copies(self, router):
        trace = cluster_trace()
        engine, result = run_faulty(
            router, net_fault_rate=0.5, trace=trace, sanitize=True
        )
        # Oblivious routers never migrate, so the link's fault injector
        # has nothing to corrupt: drops are local and unconditional.
        assert result.scatter_drops > 0
        assert result.migrations == 0
        assert result.summary.n_turns == trace.n_turns_total
        assert_one_copy(engine)
