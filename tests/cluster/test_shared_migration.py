"""Cluster migration of shared-prefix sessions.

A migrating session carries a *reference* to its shared prefix: the
private suffix item always moves, the prefix bytes ride the wire only
when the target store has no owning copy of the same content hash
(content addressing makes the second migration of that prefix free).
Cross-replica owning copies of one hash are legal — exactly-one-copy is
per store, not per cluster.
"""

from repro.cluster import ClusterConfig, ClusterEngine, RouterName
from repro.config import EngineConfig, StoreConfig
from repro.models import get_model
from repro.store import shared_prefix_hash
from repro.workload import WorkloadSpec, generate_trace

PREFIX_TOKENS = 120


def sharing_trace(n_sessions=120, rate=4.0, seed=7):
    return generate_trace(
        WorkloadSpec(
            n_sessions=n_sessions,
            arrival_rate=rate,
            seed=seed,
            shared_prefix_fraction=0.5,
            shared_prefix_len=PREFIX_TOKENS,
            n_shared_prefixes=2,
        )
    )


def build_cluster(sanitize=None, **cluster_kwargs):
    return ClusterEngine(
        get_model("llama-13b"),
        cluster=ClusterConfig(
            n_instances=4, router=RouterName.AFFINITY, **cluster_kwargs
        ),
        engine_config=EngineConfig(batch_size=8),
        store_config=StoreConfig(),
        sanitize=sanitize,
    )


class TestManualSharedMigration:
    """admit_migrated's shared re-link, driven store-to-store."""

    H = shared_prefix_hash(0, PREFIX_TOKENS, "llama-13b")

    def setup_stores(self):
        engine = build_cluster()
        source, target = engine.engines[0].store, engine.engines[1].store
        assert source is not None and target is not None
        source.register_shared(self.H, PREFIX_TOKENS, now=0.0)
        source.save(501, 800, now=0.0)
        source.acquire_shared(self.H, 501)
        return source, target

    def test_first_migration_adopts_the_prefix(self):
        source, target = self.setup_stores()
        assert source.shared_ref_of(501) == (self.H, PREFIX_TOKENS)
        item = source.extract(501)
        assert item is not None
        # Extraction drops the reference on the source; the unreferenced
        # block stays resident (plain LRU victim now, no longer pinned).
        assert source.shared_ref_of(501) is None
        admitted = target.admit_migrated(
            501,
            item.n_tokens,
            now=0.0,
            ready_at=42.0,
            shared_hash=self.H,
            shared_tokens=PREFIX_TOKENS,
        )
        assert admitted is not None
        assert target.shared_ref_of(501) == (self.H, PREFIX_TOKENS)
        assert target.has_shared(self.H)
        assert target.stats.shared_adoptions == 1
        # The adopted prefix is gated on the same wire transfer as the
        # suffix item: neither is usable before ready_at.
        assert admitted.dram_ready_at == 42.0
        source.check_invariants()
        target.check_invariants()

    def test_second_migration_reuses_resident_block(self):
        source, target = self.setup_stores()
        target.register_shared(self.H, PREFIX_TOKENS, now=0.0)
        source.save(502, 600, now=0.0)
        source.acquire_shared(self.H, 502)
        for sid in (501, 502):
            item = source.extract(sid)
            assert item is not None
            target.admit_migrated(
                sid,
                item.n_tokens,
                now=0.0,
                ready_at=1.0,
                shared_hash=self.H,
                shared_tokens=PREFIX_TOKENS,
            )
        # Both sessions re-linked to the one pre-existing block: no
        # adoption happened, so no prefix bytes would ride the wire.
        assert target.stats.shared_adoptions == 0
        assert target.shared_block_count == 1
        assert target.shared_ref_of(501) == (self.H, PREFIX_TOKENS)
        assert target.shared_ref_of(502) == (self.H, PREFIX_TOKENS)
        target.check_invariants()

    def test_cross_replica_copies_are_legal(self):
        """Owning copies of one hash on two stores violate nothing —
        content addressing dedups per store, not per cluster."""
        source, target = self.setup_stores()
        target.register_shared(self.H, PREFIX_TOKENS, now=0.0)
        assert source.has_shared(self.H) and target.has_shared(self.H)
        source.check_invariants()
        target.check_invariants()


class TestEndToEndSharedMigration:
    def test_forced_spill_migrates_prefix_sessions(self):
        """A zero spill threshold forces migrations on a sharing-heavy
        trace; every replica store must stay consistent and at least one
        migration must re-link or adopt a shared prefix."""
        engine = build_cluster(affinity_spill_tokens=0)
        trace = sharing_trace()
        result = engine.run(trace)
        assert result.summary.n_turns == trace.n_turns_total
        assert result.migrations > 0
        stores = [r.store for r in engine.engines if r.store is not None]
        for store in stores:
            store.check_invariants()
        assert sum(s.stats.shared_acquires for s in stores) > 0
        migrated_links = sum(
            s.stats.shared_adoptions for s in stores
        )
        relinked = any(
            s.stats.migrations_in > 0 and s.shared_block_count > 0
            for s in stores
        )
        assert migrated_links > 0 or relinked

    def test_sharing_cluster_run_under_sanitizer(self):
        """The chaos-smoke shape at small scale: every SimSan invariant
        armed while shared-prefix sessions migrate between replicas."""
        engine = build_cluster(sanitize=True, affinity_spill_tokens=0)
        result = engine.run(sharing_trace(n_sessions=60))
        assert result.summary.hits_shared > 0
