"""Replica lifecycle: crash/restart/drain with session failover.

The failure model (DESIGN.md §11): a crash wipes the replica's volatile
KV (HBM + DRAM) and kills its in-flight turns, but the SSD tier survives
and is re-admitted at restart; a graceful drain migrates live sessions
out before stopping.  With failover on, interrupted and newly-arriving
turns are re-routed to healthy replicas (recomputing history when the KV
died with the replica); with it off, they park until the replica
returns — the naive-restart baseline.
"""

import dataclasses

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    ReplicaLifecycle,
    ReplicaState,
    RouterName,
)
from repro.config import EngineConfig, StoreConfig
from repro.faults import (
    FaultConfig,
    ReplicaCrash,
    ReplicaDrain,
    ReplicaFaultSchedule,
)
from repro.models import get_model
from repro.workload import WorkloadSpec, generate_trace

MODEL = get_model("llama-13b")


def chaos_trace(n_sessions=80, rate=4.0, seed=7):
    return generate_trace(
        WorkloadSpec(n_sessions=n_sessions, arrival_rate=rate, seed=seed)
    )


def tight_store():
    """Small-DRAM store so KV actually reaches the SSD tier pre-crash."""
    return StoreConfig(
        dram_bytes=40_000 * MODEL.kv_bytes_per_token,
        ssd_bytes=2_000_000 * MODEL.kv_bytes_per_token,
    )


def run_chaos(
    schedule,
    *,
    failover=True,
    n_instances=3,
    router=RouterName.AFFINITY,
    trace=None,
    store_config=None,
    sanitize=None,
):
    engine = ClusterEngine(
        MODEL,
        cluster=ClusterConfig(
            n_instances=n_instances, router=router, failover=failover
        ),
        engine_config=EngineConfig(batch_size=8),
        store_config=store_config or StoreConfig(),
        fault_config=FaultConfig(seed=3, replica_schedule=schedule),
        sanitize=sanitize,
    )
    result = engine.run(trace if trace is not None else chaos_trace())
    return engine, result


def one_crash(at=60.0, replica=1, downtime=45.0):
    return ReplicaFaultSchedule(
        crashes=(ReplicaCrash(at=at, replica=replica, downtime=downtime),)
    )


class TestCrashRestart:
    def test_failover_serves_every_turn(self):
        trace = chaos_trace()
        engine, result = run_chaos(one_crash(), trace=trace)
        assert result.summary.n_turns == trace.n_turns_total
        assert result.crashes == 1
        assert result.restarts == 1
        assert result.failovers > 0
        assert result.failover_recompute_tokens > 0
        assert result.total_downtime_s == 45.0
        assert result.mttr_s == 45.0
        life = engine.lifecycles[1]
        assert life.state is ReplicaState.UP
        assert (life.crashes, life.restarts) == (1, 1)

    def test_ssd_copies_survive_and_failed_over_copies_discard(self):
        engine, _ = run_chaos(
            one_crash(), n_instances=2, store_config=tight_store()
        )
        stats = engine.engines[1].store.stats
        # Both restart paths fire: sessions that stayed homed here get
        # their surviving SSD copy back; sessions that failed over during
        # the downtime have an authoritative copy elsewhere, so the
        # parked one is discarded (exactly-one-copy across the restart).
        assert stats.restart_readmissions > 0
        assert stats.restart_discards > 0

    def test_naive_restart_parks_turns(self):
        trace = chaos_trace()
        engine, result = run_chaos(
            one_crash(),
            trace=trace,
            n_instances=2,
            store_config=tight_store(),
            failover=False,
        )
        assert result.summary.n_turns == trace.n_turns_total
        assert result.parked_turns > 0
        assert result.failovers == 0
        assert result.failover_recompute_tokens == 0
        # Parked sessions resume against their re-admitted SSD copy.
        assert engine.engines[1].store.stats.restart_readmissions > 0

    def test_all_replicas_down_holds_and_retries(self):
        trace = chaos_trace(n_sessions=40)
        schedule = ReplicaFaultSchedule(
            crashes=(
                ReplicaCrash(at=30.0, replica=0, downtime=20.0),
                ReplicaCrash(at=30.0, replica=1, downtime=20.0),
            )
        )
        _, result = run_chaos(schedule, n_instances=2, trace=trace)
        assert result.summary.n_turns == trace.n_turns_total
        assert result.failover_retries > 0

    def test_sanitized_chaos_run_is_clean(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=30.0, replica=1, downtime=40.0),),
            drains=(ReplicaDrain(at=120.0, replica=0),),
        )
        trace = chaos_trace()
        _, result = run_chaos(schedule, trace=trace, sanitize=True)
        assert result.summary.n_turns == trace.n_turns_total


class TestDrain:
    def test_drain_migrates_out_and_stops(self):
        trace = chaos_trace()
        schedule = ReplicaFaultSchedule(drains=(ReplicaDrain(at=60.0, replica=0),))
        engine, result = run_chaos(schedule, trace=trace)
        assert result.summary.n_turns == trace.n_turns_total
        assert result.drains == 1
        life = engine.lifecycles[0]
        assert life.state is ReplicaState.STOPPED
        assert life.drain_finished_at is not None
        # "Migrate, then stop": nothing is left behind, and live sessions
        # took their KV with them over the cluster link.
        assert len(engine.engines[0].store) == 0
        assert result.migrations > 0

    def test_drain_preserves_kv_under_scatter_routers(self):
        trace = chaos_trace()
        schedule = ReplicaFaultSchedule(drains=(ReplicaDrain(at=60.0, replica=0),))
        engine, result = run_chaos(
            schedule, trace=trace, router=RouterName.ROUND_ROBIN
        )
        assert result.summary.n_turns == trace.n_turns_total
        assert engine.lifecycles[0].state is ReplicaState.STOPPED
        # Forced drain migrations move KV even though round-robin would
        # normally scatter-drop it.
        assert result.migrations > 0

    def test_crash_cancels_drain(self):
        # Drain during the arrival burst (in-flight turns keep the drain
        # polling), then crash the draining replica before it empties.
        trace = chaos_trace()
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=2.0, replica=0, downtime=30.0),),
            drains=(ReplicaDrain(at=1.0, replica=0),),
        )
        engine, result = run_chaos(schedule, trace=trace)
        assert result.summary.n_turns == trace.n_turns_total
        assert result.crashes == 1
        life = engine.lifecycles[0]
        # The crash cancelled the drain: the replica came back UP after
        # its downtime instead of reaching STOPPED.
        assert life.state is ReplicaState.UP
        assert life.drain_finished_at is None


class TestDeterminism:
    def _snapshot(self, result):
        return (
            dataclasses.asdict(result.summary),
            [dataclasses.asdict(r.summary) for r in result.replicas],
            result.crashes,
            result.restarts,
            result.drains,
            result.lost_turns,
            result.failovers,
            result.failover_retries,
            result.parked_turns,
            result.failover_recompute_tokens,
            result.events_processed,
        )

    def test_chaos_runs_are_bit_identical(self):
        schedule = ReplicaFaultSchedule(
            crashes=(ReplicaCrash(at=30.0, replica=1, downtime=40.0),),
            drains=(ReplicaDrain(at=120.0, replica=2),),
        )
        a = run_chaos(schedule, trace=chaos_trace())[1]
        b = run_chaos(schedule, trace=chaos_trace())[1]
        assert self._snapshot(a) == self._snapshot(b)

    def test_no_schedule_matches_empty_schedule(self):
        """An inert schedule must not perturb a healthy run."""
        trace = chaos_trace()
        plain = run_chaos(None, trace=trace)[1]
        empty = run_chaos(ReplicaFaultSchedule(), trace=chaos_trace())[1]
        assert self._snapshot(plain) == self._snapshot(empty)


class TestLifecycleTransitions:
    def test_initial_state(self):
        life = ReplicaLifecycle()
        assert life.state is ReplicaState.UP
        assert life.routable and life.reachable

    def test_crash_restart_accounting(self):
        life = ReplicaLifecycle()
        life.crash(10.0)
        assert life.state is ReplicaState.DOWN
        assert not life.routable and not life.reachable
        life.restart(25.0)
        assert life.state is ReplicaState.UP
        assert life.total_downtime == 15.0
        assert life.mttr == 15.0

    def test_drain_is_reachable_but_not_routable(self):
        life = ReplicaLifecycle()
        life.begin_drain(5.0)
        assert life.state is ReplicaState.DRAINING
        assert not life.routable
        assert life.reachable
        life.finish_drain(9.0)
        assert life.state is ReplicaState.STOPPED

    def test_illegal_transitions(self):
        life = ReplicaLifecycle()
        with pytest.raises(ValueError):
            life.restart(1.0)  # not down
        life.crash(1.0)
        with pytest.raises(ValueError):
            life.crash(2.0)  # already down
        with pytest.raises(ValueError):
            life.begin_drain(2.0)  # down replicas cannot drain
        life.restart(3.0)
        life.begin_drain(4.0)
        with pytest.raises(ValueError):
            life.begin_drain(5.0)  # already draining

    def test_crash_cancels_drain_transition(self):
        life = ReplicaLifecycle()
        life.begin_drain(1.0)
        life.crash(2.0)
        assert life.state is ReplicaState.DOWN
        assert life.drain_started_at is None
