"""Tests for the roofline performance model and its paper calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.config import GPUSpec, HardwareConfig
from repro.hardware import PerfModel
from repro.models import get_model


@pytest.fixture
def pm65():
    return PerfModel(get_model("llama-65b"), HardwareConfig(num_gpus=4))


@pytest.fixture
def pm13():
    return PerfModel(get_model("llama-13b"), HardwareConfig(num_gpus=2))


class TestPaperCalibration:
    """Section 2.4's published measurements pin the model down."""

    def test_llama65b_2k_prefill_is_360ms(self, pm65):
        assert pm65.prefill_time(2048) == pytest.approx(0.36, rel=0.1)

    def test_llama65b_2k_kv_is_5gb(self):
        model = get_model("llama-65b")
        assert model.kv_bytes(2048) / 1e9 == pytest.approx(5.0, rel=0.1)

    def test_llama65b_2k_kv_load_is_192ms(self, pm65):
        assert pm65.kv_transfer_time(2048, 26e9) == pytest.approx(0.192, rel=0.1)

    def test_kv_generation_rate_is_14gbps(self, pm65):
        """The paper: 5 GB in 360 ms = ~13.9 GB/s of KV production."""
        model = get_model("llama-65b")
        rate = model.kv_bytes(2048) / pm65.prefill_time(2048)
        assert rate / 1e9 == pytest.approx(13.9, rel=0.15)

    def test_per_token_kv_sizes(self):
        expected = {
            "llama-13b": 0.78,
            "llama-65b": 2.5,
            "llama-70b": 0.31,
            "falcon-40b": 0.12,
        }
        for name, mb in expected.items():
            size = get_model(name).kv_bytes_per_token / 2**20
            assert size == pytest.approx(mb, rel=0.05), name


class TestPrefill:
    def test_scales_with_tokens(self, pm13):
        assert pm13.prefill_time(2048) > 1.9 * pm13.prefill_time(1024)

    def test_past_context_adds_attention_cost(self, pm13):
        assert pm13.prefill_time(100, n_past=2000) > pm13.prefill_time(100, 0)

    def test_batch_multiplies(self, pm13):
        assert pm13.prefill_time(512, batch=4) == pytest.approx(
            4 * pm13.prefill_time(512), rel=1e-6
        )

    def test_rejects_bad_batch(self, pm13):
        with pytest.raises(ValueError):
            pm13.prefill_time(10, batch=0)

    def test_per_token_rate(self, pm13):
        per_tok = pm13.prefill_time_per_token()
        model = get_model("llama-13b")
        assert per_tok == pytest.approx(
            2 * model.n_params / pm13.effective_flops
        )


class TestDecode:
    def test_step_time_grows_with_context(self, pm13):
        short = pm13.decode_step_time([100] * 8)
        long = pm13.decode_step_time([4000] * 8)
        assert long > short

    def test_weights_dominate_small_batch(self, pm13):
        """At tiny contexts, decode cost is the weight read."""
        model = get_model("llama-13b")
        floor = model.weight_bytes / pm13.effective_hbm_bandwidth
        assert pm13.decode_step_time([1]) == pytest.approx(floor, rel=0.01)

    def test_segment_matches_stepwise_sum(self, pm13):
        contexts = [100, 200, 300]
        total = 0.0
        ctx = list(contexts)
        for _ in range(10):
            total += pm13.decode_step_time(ctx)
            ctx = [c + 1 for c in ctx]
        assert pm13.decode_segment_time(contexts, 10) == pytest.approx(total)

    def test_segment_from_sum_equivalent(self, pm13):
        contexts = [128, 256, 512, 64]
        assert pm13.decode_segment_time(contexts, 7) == pytest.approx(
            pm13.decode_segment_time_from_sum(sum(contexts), len(contexts), 7)
        )

    def test_zero_iterations(self, pm13):
        assert pm13.decode_segment_time([100], 0) == 0.0

    def test_rejects_negative_iterations(self, pm13):
        with pytest.raises(ValueError):
            pm13.decode_segment_time([100], -1)

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=4096),
    )
    def test_segment_time_positive_and_monotone_in_iters(self, batch, iters, ctx):
        pm = PerfModel(get_model("llama-13b"), HardwareConfig(num_gpus=2))
        t1 = pm.decode_segment_time_from_sum(ctx * batch, batch, iters)
        t2 = pm.decode_segment_time_from_sum(ctx * batch, batch, iters + 1)
        assert 0 < t1 < t2


class TestTransfers:
    def test_kv_transfer_time(self, pm13):
        model = get_model("llama-13b")
        expected = model.kv_bytes(1000) / 26e9
        assert pm13.kv_transfer_time(1000, 26e9) == pytest.approx(expected)

    def test_rejects_bad_bandwidth(self, pm13):
        with pytest.raises(ValueError):
            pm13.kv_transfer_time(1000, 0)

    def test_read_buffer_zero_when_compute_dominates(self, pm13):
        """S_buf = B * (T_load*L_hist - T_pref*L_new), floored at 0."""
        assert pm13.read_buffer_bytes(n_hist=10, n_new=5000) == 0.0

    def test_read_buffer_positive_when_load_dominates(self, pm13):
        assert pm13.read_buffer_bytes(n_hist=5000, n_new=10) > 0


class TestHardwareConfig:
    def test_free_hbm(self):
        hw = HardwareConfig(num_gpus=4)
        model = get_model("llama-65b")
        free = hw.free_hbm_bytes(model)
        assert free == hw.total_hbm_bytes - model.weight_bytes
        # The paper: ~130 GB of weights leave ~190 GB free on 4xA100-80G.
        assert free / 1e9 == pytest.approx(213, rel=0.15)

    def test_model_too_big_raises(self):
        hw = HardwareConfig(num_gpus=1)
        with pytest.raises(ValueError, match="does not fit"):
            hw.free_hbm_bytes(get_model("llama-65b"))

    def test_for_model_uses_default_gpus(self):
        hw = HardwareConfig().for_model(get_model("llama-13b"))
        assert hw.num_gpus == 2

    def test_gpu_spec_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(mfu=0.0)
        with pytest.raises(ValueError):
            GPUSpec(mbu=1.5)
