"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EngineConfig, HardwareConfig, StoreConfig
from repro.models import GiB, MiB, get_model
from repro.workload import WorkloadSpec, generate_trace


@pytest.fixture(scope="session")
def small_trace():
    """A tiny deterministic workload (fast engine tests)."""
    return generate_trace(WorkloadSpec(n_sessions=40, seed=7))


@pytest.fixture(scope="session")
def medium_trace():
    """A mid-sized workload for integration tests."""
    return generate_trace(WorkloadSpec(n_sessions=200, seed=13))


@pytest.fixture
def llama13b():
    return get_model("llama-13b")


@pytest.fixture
def llama65b():
    return get_model("llama-65b")


@pytest.fixture
def small_store_config():
    """A deliberately tight store so eviction paths are exercised."""
    return StoreConfig(dram_bytes=8 * GiB, ssd_bytes=64 * GiB, block_bytes=16 * MiB)


@pytest.fixture
def engine_config():
    return EngineConfig(batch_size=8)


@pytest.fixture
def hardware():
    return HardwareConfig(num_gpus=2)
