"""Tests for the model registry and configuration dataclasses."""

import pytest

from repro.config import (
    EngineConfig,
    GPUSpec,
    HardwareConfig,
    ServingMode,
    StoreConfig,
    TruncationPolicyName,
)
from repro.models import (
    EVALUATION_MODELS,
    MODEL_REGISTRY,
    GiB,
    MiB,
    ModelSpec,
    get_model,
    register_model,
)


class TestModelSpec:
    def test_gqa_factor(self):
        assert get_model("llama-70b").gqa_factor == 8
        assert get_model("falcon-40b").gqa_factor == 16
        assert get_model("llama-13b").gqa_factor == 1

    def test_kv_dim(self):
        model = get_model("llama-70b")
        assert model.kv_dim == model.n_kv_heads * model.head_dim

    def test_kv_bytes_scales_linearly(self):
        model = get_model("llama-13b")
        assert model.kv_bytes(100) == 100 * model.kv_bytes_per_token
        assert model.kv_bytes(0) == 0

    def test_kv_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            get_model("llama-13b").kv_bytes(-1)

    def test_weight_bytes_fp16(self):
        model = get_model("llama-65b")
        assert model.weight_bytes == 2 * model.n_params

    def test_prefill_flops_dense_term(self):
        model = get_model("llama-13b")
        # Dense term dominates at zero past context.
        assert model.prefill_flops(1000, 0) >= 2.0 * model.n_params * 1000

    def test_prefill_flops_grows_with_past(self):
        model = get_model("llama-13b")
        assert model.prefill_flops(100, 4000) > model.prefill_flops(100, 0)

    def test_decode_flops_is_one_token_prefill(self):
        model = get_model("llama-13b")
        assert model.decode_flops(500) == model.prefill_flops(1, 500)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            get_model("llama-13b").prefill_flops(-1)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_heads"):
            ModelSpec(
                name="bad", n_params=1, n_layers=1, d_model=8, n_heads=3,
                n_kv_heads=2, head_dim=2, context_window=8,
            )
        with pytest.raises(ValueError, match="n_params"):
            ModelSpec(
                name="bad", n_params=0, n_layers=1, d_model=8, n_heads=2,
                n_kv_heads=2, head_dim=2, context_window=8,
            )


class TestRegistry:
    def test_known_models_present(self):
        for name in (
            "llama-7b", "llama-13b", "llama-65b", "llama-70b",
            "falcon-40b", "mistral-7b",
        ):
            assert get_model(name).name == name

    def test_unknown_model_lists_known(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("gpt-17")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model(get_model("llama-13b"))

    def test_evaluation_models_are_the_papers_four(self):
        assert [m.name for m in EVALUATION_MODELS] == [
            "llama-13b", "llama-65b", "llama-70b", "falcon-40b",
        ]

    def test_context_windows_match_model_families(self):
        assert get_model("llama-65b").context_window == 2048  # LLaMA-1
        assert get_model("llama-13b").context_window == 4096  # LLaMA-2
        assert get_model("mistral-7b").context_window == 32768

    def test_paper_deployments(self):
        assert get_model("llama-13b").default_num_gpus == 2
        for name in ("llama-65b", "llama-70b", "falcon-40b"):
            assert get_model(name).default_num_gpus == 4
            assert get_model(name).default_batch_size == 24


class TestConfigValidation:
    def test_store_defaults_match_paper(self):
        store = StoreConfig()
        assert store.dram_bytes == 128 * GiB
        assert store.ssd_bytes == 10 * 1024 * GiB
        assert store.ttl_seconds is None

    def test_store_rejections(self):
        with pytest.raises(ValueError):
            StoreConfig(block_bytes=0)
        with pytest.raises(ValueError):
            StoreConfig(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            StoreConfig(dram_buffer_fraction=1.0)
        with pytest.raises(ValueError):
            StoreConfig(prefetch_capacity_fraction=0.0)

    def test_engine_rejections(self):
        with pytest.raises(ValueError):
            EngineConfig(truncation_ratio=0.0)
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(read_buffer_layers=-1)
        with pytest.raises(ValueError):
            EngineConfig(decode_chunk_iters=0)
        with pytest.raises(ValueError):
            EngineConfig(prefill_efficiency_factor=0.0)

    def test_recompute_baseline_preset(self):
        cfg = EngineConfig.recompute_baseline(batch_size=12)
        assert cfg.mode is ServingMode.RECOMPUTE
        assert cfg.truncation is TruncationPolicyName.TOKEN
        assert cfg.batch_size == 12

    def test_hardware_rejections(self):
        with pytest.raises(ValueError):
            HardwareConfig(num_gpus=0)
        with pytest.raises(ValueError):
            HardwareConfig(pcie_bandwidth=0)
